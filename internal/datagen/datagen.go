// Package datagen generates the four synthetic evaluation documents. The
// paper evaluates on NASA, IMDB, PSD (real) and XMark (synthetic); none of
// the originals are redistributable here, so each generator reproduces the
// structural fingerprint the paper's analysis depends on:
//
//   - nasa: flat catalog of regular bibliographic records. Child counts
//     are drawn independently given the parent, so the conditional
//     independence assumption behind Theorem 1 holds well — TreeLattice
//     is accurate and 0-derivable pruning removes most patterns.
//   - imdb: movie records whose sibling counts (cast size, keyword count,
//     release count, …) are all driven by a hidden per-movie popularity
//     factor. Sibling counts are correlated, conditional independence is
//     violated, and — as in Figure 7(b) — decomposition loses accuracy
//     while clustering synopses cope better.
//   - psd: protein records, regular like nasa but with deeper nesting and
//     a different label alphabet.
//   - xmark: the auction-site schema with heavy-tailed fanouts (bidders
//     per auction, watches per person, mails per item). The per-element
//     child-count variance is what makes average-multiplication synopses
//     fail catastrophically on this dataset (Figure 7(d)).
//
// Generation is deterministic for a given Config.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"treelattice/internal/labeltree"
)

// Profile selects a dataset generator.
type Profile string

// The four evaluation datasets of the paper.
const (
	NASA  Profile = "nasa"
	IMDB  Profile = "imdb"
	PSD   Profile = "psd"
	XMark Profile = "xmark"
)

// AllProfiles returns the four profiles in the paper's presentation order.
func AllProfiles() []Profile { return []Profile{NASA, IMDB, PSD, XMark} }

// Config parameterizes generation.
type Config struct {
	Profile Profile
	// Scale is the approximate element (node) count of the generated
	// document. Generation stops after the record that crosses it.
	Scale int
	// Seed makes generation deterministic; 0 is a valid seed.
	Seed int64
}

// Generate builds the document for cfg, interning labels into dict.
func Generate(cfg Config, dict *labeltree.Dict) (*labeltree.Tree, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("datagen: Scale must be positive, got %d", cfg.Scale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(len(cfg.Profile))))
	g := &gen{b: labeltree.NewBuilder(dict), rng: rng, scale: cfg.Scale}
	switch cfg.Profile {
	case NASA:
		g.nasa()
	case IMDB:
		g.imdb()
	case PSD:
		g.psd()
	case XMark:
		g.xmark()
	default:
		return nil, fmt.Errorf("datagen: unknown profile %q", cfg.Profile)
	}
	return g.b.Build(), nil
}

type gen struct {
	b     *labeltree.Builder
	rng   *rand.Rand
	scale int
}

func (g *gen) full() bool { return g.b.Len() >= g.scale }

// add appends a child and returns its id.
func (g *gen) add(parent int32, name string) int32 { return g.b.AddChild(parent, name) }

// leaf appends a childless element.
func (g *gen) leaf(parent int32, name string) { g.b.AddChild(parent, name) }

// ---- count distributions ----

// uniform draws an integer in [lo, hi].
func (g *gen) uniform(lo, hi int) int { return lo + g.rng.Intn(hi-lo+1) }

// geometric draws a non-negative integer with the given mean.
func (g *gen) geometric(mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for g.rng.Float64() > p {
		n++
		if n > 10000 {
			break
		}
	}
	return n
}

// heavy draws from a discrete Pareto tail: high-variance fanouts, the
// XMark fingerprint. mean roughly xm·α/(α−1) for α>1 before capping.
func (g *gen) heavy(xm float64, alpha float64, cap int) int {
	u := g.rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	v := int(math.Floor(xm / math.Pow(u, 1/alpha)))
	if v > cap {
		v = cap
	}
	return v
}

// maybe returns true with probability p.
func (g *gen) maybe(p float64) bool { return g.rng.Float64() < p }

// popularity draws the hidden per-record factor used by the imdb profile
// to correlate sibling counts: lognormal with unit mean.
func (g *gen) popularity(sigma float64) float64 {
	return math.Exp(g.rng.NormFloat64()*sigma - sigma*sigma/2)
}

// scaled turns a base mean and a correlation factor into a count.
func (g *gen) scaled(mean, factor float64) int {
	return g.geometric(mean * factor)
}

// ---- NASA: regular bibliographic catalog, independence holds ----

func (g *gen) nasa() {
	root := g.b.AddRoot("datasets")
	for !g.full() {
		g.nasaDataset(root)
	}
}

// nasaDataset emits one rigid catalog record: every record has the same
// top-level children exactly once, with count variability pushed inside
// dedicated containers. Cross-container patterns are then exactly
// derivable under conditional independence, which is why 0-derivable
// pruning is so effective on this dataset (Figure 10a).
func (g *gen) nasaDataset(root int32) {
	ds := g.add(root, "dataset")
	g.leaf(ds, "title")
	g.leaf(ds, "identifier")
	g.leaf(g.add(ds, "altname"), "subject")
	authors := g.add(ds, "authors")
	for i, n := 0, g.uniform(1, 4); i < n; i++ {
		au := g.add(authors, "author")
		g.leaf(au, "initial")
		g.leaf(au, "lastname")
	}
	refs := g.add(ds, "references")
	for i, n := 0, g.geometric(1.5); i < n; i++ {
		ref := g.add(refs, "reference")
		src := g.add(ref, "source")
		j := g.add(src, "journal")
		g.leaf(j, "name")
		g.leaf(j, "publisher")
		g.leaf(g.add(ref, "date"), "year")
	}
	kw := g.add(ds, "keywords")
	for i, n := 0, g.uniform(1, 5); i < n; i++ {
		g.leaf(kw, "keyword")
	}
	desc := g.add(ds, "descriptions")
	d := g.add(desc, "description")
	for i, n := 0, g.uniform(1, 3); i < n; i++ {
		g.leaf(d, "para")
	}
	th := g.add(ds, "tableHead")
	for i, n := 0, g.uniform(2, 6); i < n; i++ {
		g.leaf(th, "field")
	}
	h := g.add(ds, "history")
	g.leaf(g.add(h, "creation"), "date")
	rev := g.add(h, "revisions")
	for i, n := 0, g.geometric(1); i < n; i++ {
		g.leaf(rev, "revision")
	}
}

// ---- IMDB: correlated sibling counts via a hidden popularity factor ----

func (g *gen) imdb() {
	root := g.b.AddRoot("imdb")
	for !g.full() {
		g.imdbMovie(root)
	}
}

// imdbMovie emits one movie record whose repeated children hang directly
// off the movie element with counts all driven by one hidden popularity
// factor. Sibling counts are correlated, so even size-3 patterns like
// movie(actor, keyword) are not derivable under conditional independence:
// 0-derivable pruning saves little on this dataset (Figure 10a) and
// decomposition estimates drift with query size (Figure 7b).
func (g *gen) imdbMovie(root int32) {
	f := g.popularity(1.2)
	mv := g.add(root, "movie")
	g.leaf(mv, "title")
	g.leaf(mv, "year")
	g.leaf(mv, "language")
	for i, n := 0, g.uniform(1, 2); i < n; i++ {
		g.leaf(g.add(mv, "director"), "name")
	}
	for i, n := 0, 1+g.scaled(4, f); i < n; i++ {
		ac := g.add(mv, "actor")
		g.leaf(ac, "name")
		if g.maybe(0.3) {
			g.leaf(ac, "role")
		}
	}
	for i, n := 0, g.scaled(3, f); i < n; i++ {
		g.leaf(mv, "keyword")
	}
	for i, n := 0, 1+g.scaled(1.2, f); i < n; i++ {
		g.leaf(mv, "genre")
	}
	for i, n := 0, g.scaled(2, f); i < n; i++ {
		r := g.add(mv, "release")
		g.leaf(r, "country")
		g.leaf(r, "date")
	}
	if g.maybe(math.Min(1, 0.3*f)) {
		rt := g.add(mv, "rating")
		g.leaf(rt, "votes")
		g.leaf(rt, "score")
	}
}

// ---- PSD: regular protein records, deeper nesting ----

func (g *gen) psd() {
	root := g.b.AddRoot("ProteinDatabase")
	for !g.full() {
		g.psdEntry(root)
	}
}

// psdEntry emits one rigid protein record: like nasa, constant top-level
// structure with count variability inside containers, so independence and
// derivability hold; the per-reference author-count variation keeps the
// count-stable partition large enough to pressure a synopsis budget.
func (g *gen) psdEntry(root int32) {
	e := g.add(root, "ProteinEntry")
	h := g.add(e, "header")
	g.leaf(h, "uid")
	g.leaf(h, "accession")
	g.leaf(g.add(e, "protein"), "name")
	org := g.add(e, "organism")
	g.leaf(org, "source")
	g.leaf(org, "common")
	g.leaf(e, "sequence")
	refs := g.add(e, "references")
	for i, n := 0, g.uniform(1, 3); i < n; i++ {
		ref := g.add(refs, "reference")
		ri := g.add(ref, "refinfo")
		aus := g.add(ri, "authors")
		for j, m := 0, g.uniform(1, 6); j < m; j++ {
			g.leaf(aus, "author")
		}
		g.leaf(ri, "title")
		g.leaf(ri, "year")
		ai := g.add(ref, "accinfo")
		g.leaf(ai, "xrefs")
		for j, m := 0, g.uniform(0, 2); j < m; j++ {
			g.leaf(ai, "genetics")
		}
	}
	fts := g.add(e, "features")
	for i, n := 0, g.geometric(2); i < n; i++ {
		ft := g.add(fts, "feature")
		g.leaf(ft, "feature-type")
		loc := g.add(ft, "location")
		g.leaf(loc, "begin")
		g.leaf(loc, "end")
	}
	cls := g.add(e, "classification")
	for i, n := 0, g.uniform(1, 3); i < n; i++ {
		g.leaf(cls, "superfamily")
	}
	s := g.add(e, "summary")
	g.leaf(s, "length")
	g.leaf(s, "molweight")
}

// ---- XMark: auction site with heavy-tailed fanouts ----

func (g *gen) xmark() {
	root := g.b.AddRoot("site")
	regions := g.add(root, "regions")
	regionNames := []string{"africa", "asia", "europe", "namerica", "samerica", "australia"}
	regionIDs := make([]int32, len(regionNames))
	for i, n := range regionNames {
		regionIDs[i] = g.add(regions, n)
	}
	people := g.add(root, "people")
	open := g.add(root, "open_auctions")
	closed := g.add(root, "closed_auctions")
	cats := g.add(root, "categories")
	for !g.full() {
		switch g.rng.Intn(5) {
		case 0:
			g.xmarkItem(regionIDs[g.rng.Intn(len(regionIDs))])
		case 1:
			g.xmarkPerson(people)
		case 2:
			g.xmarkOpenAuction(open)
		case 3:
			g.xmarkClosedAuction(closed)
		case 4:
			c := g.add(cats, "category")
			g.leaf(c, "name")
			g.leaf(g.add(c, "description"), "text")
		}
	}
}

func (g *gen) xmarkItem(region int32) {
	it := g.add(region, "item")
	g.leaf(it, "location")
	g.leaf(it, "name")
	g.leaf(it, "payment")
	desc := g.add(it, "description")
	g.xmarkText(desc, 0)
	if g.maybe(0.5) {
		mb := g.add(it, "mailbox")
		for i, n := 0, g.heavy(1, 1.3, 150)-1; i < n; i++ {
			m := g.add(mb, "mail")
			g.leaf(m, "from")
			g.leaf(m, "date")
			g.xmarkText(m, 2)
		}
	}
}

// xmarkText emits XMark's recursive markup: text elements containing
// keywords/bold plus optional parlist → listitem → text nesting. Top-level
// description texts are keyword-rich with a heavy tail; nested texts are
// sparse. A count-stable partition keeps the two apart; once a memory
// budget forces a synopsis to merge them, the shared average keyword count
// grossly overestimates selective queries through the nested texts —
// XMark's Figure 7(d)/11 failure mode for TreeSketches.
func (g *gen) xmarkText(parent int32, depth int) {
	txt := g.add(parent, "text")
	if depth == 0 {
		for i, n := 0, g.heavy(1, 1.4, 120); i < n; i++ {
			g.leaf(txt, "keyword")
		}
		for i, n := 0, g.heavy(1, 1.6, 80)-1; i < n; i++ {
			g.leaf(txt, "bold")
		}
	} else if g.maybe(0.15) {
		g.leaf(txt, "keyword")
	}
	if depth < 6 && g.maybe(0.4) {
		pl := g.add(txt, "parlist")
		for i, n := 0, g.uniform(1, 3); i < n; i++ {
			li := g.add(pl, "listitem")
			g.xmarkText(li, depth+1)
		}
	}
}

func (g *gen) xmarkPerson(people int32) {
	p := g.add(people, "person")
	g.leaf(p, "name")
	g.leaf(p, "emailaddress")
	if g.maybe(0.5) {
		g.leaf(p, "phone")
	}
	if g.maybe(0.6) {
		ad := g.add(p, "address")
		g.leaf(ad, "street")
		g.leaf(ad, "city")
		g.leaf(ad, "country")
	}
	if g.maybe(0.4) {
		ws := g.add(p, "watches")
		for i, n := 0, g.heavy(1, 1.3, 200)-1; i < n; i++ {
			g.leaf(ws, "watch")
		}
	}
}

func (g *gen) xmarkOpenAuction(open int32) {
	a := g.add(open, "open_auction")
	g.leaf(a, "initial")
	g.leaf(a, "current")
	g.leaf(a, "itemref")
	// Bidders per auction are strongly heavy-tailed: the variance that
	// wrecks average-multiplication synopses.
	for i, n := 0, g.heavy(1, 1.2, 300)-1; i < n; i++ {
		bd := g.add(a, "bidder")
		g.leaf(bd, "date")
		g.leaf(bd, "increase")
	}
}

func (g *gen) xmarkClosedAuction(closed int32) {
	a := g.add(closed, "closed_auction")
	g.leaf(a, "seller")
	g.leaf(a, "buyer")
	g.leaf(a, "itemref")
	g.leaf(a, "price")
	g.leaf(a, "date")
}
