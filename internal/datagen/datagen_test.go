package datagen

import (
	"math"
	"testing"

	"treelattice/internal/labeltree"
)

func genTree(t *testing.T, p Profile, scale int, seed int64) *labeltree.Tree {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := Generate(Config{Profile: p, Scale: scale, Seed: seed}, dict)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateAllProfiles(t *testing.T) {
	for _, p := range AllProfiles() {
		tr := genTree(t, p, 5000, 1)
		s := tr.Stats()
		if s.Nodes < 5000 || s.Nodes > 7000 {
			t.Errorf("%s: %d nodes, want ~5000", p, s.Nodes)
		}
		if s.Labels < 15 {
			t.Errorf("%s: only %d labels", p, s.Labels)
		}
		if s.MaxDepth < 2 {
			t.Errorf("%s: depth %d too shallow", p, s.MaxDepth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, p := range AllProfiles() {
		t1 := genTree(t, p, 2000, 7)
		t2 := genTree(t, p, 2000, 7)
		if t1.Size() != t2.Size() {
			t.Fatalf("%s: sizes differ across runs", p)
		}
		for i := int32(0); int(i) < t1.Size(); i++ {
			if t1.Label(i) != t2.Label(i) || t1.Parent(i) != t2.Parent(i) {
				t.Fatalf("%s: node %d differs across runs", p, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	t1 := genTree(t, NASA, 2000, 1)
	t2 := genTree(t, NASA, 2000, 2)
	if t1.Size() == t2.Size() {
		// Sizes can collide; require some structural difference.
		same := true
		for i := int32(0); int(i) < t1.Size(); i++ {
			if t1.Label(i) != t2.Label(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical documents")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	dict := labeltree.NewDict()
	if _, err := Generate(Config{Profile: NASA, Scale: 0}, dict); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Generate(Config{Profile: "bogus", Scale: 100}, dict); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// fanoutVariance returns the variance of child counts across all nodes
// with the given label.
func fanoutVariance(tr *labeltree.Tree, dict *labeltree.Dict, label string) float64 {
	id, ok := dict.Lookup(label)
	if !ok {
		return 0
	}
	var n, sum, sumsq float64
	for _, v := range tr.NodesByLabel(id) {
		c := float64(len(tr.Children(v)))
		n++
		sum += c
		sumsq += c * c
	}
	if n == 0 {
		return 0
	}
	mean := sum / n
	return sumsq/n - mean*mean
}

func TestXMarkHasHighFanoutVariance(t *testing.T) {
	// The defining property: XMark's record-level fanout variance (bidders
	// per auction) dwarfs NASA's (children per dataset record). This is
	// what breaks average-multiplication synopses on XMark.
	xmDict := labeltree.NewDict()
	xm, err := Generate(Config{Profile: XMark, Scale: 20000, Seed: 3}, xmDict)
	if err != nil {
		t.Fatal(err)
	}
	naDict := labeltree.NewDict()
	na, err := Generate(Config{Profile: NASA, Scale: 20000, Seed: 3}, naDict)
	if err != nil {
		t.Fatal(err)
	}
	vx := fanoutVariance(xm, xmDict, "open_auction")
	vn := fanoutVariance(na, naDict, "dataset")
	if vx < 10*vn {
		t.Fatalf("xmark auction fanout variance %.1f not ≫ nasa dataset variance %.1f", vx, vn)
	}
	if xm.Stats().MaxFanout < 50 {
		t.Fatalf("xmark max fanout %d lacks a heavy tail", xm.Stats().MaxFanout)
	}
}

func TestIMDBSiblingCorrelation(t *testing.T) {
	// Cast size and keyword count must be positively correlated across
	// movies (the hidden popularity factor), violating conditional
	// independence. Compute the sample correlation of the two counts.
	dict := labeltree.NewDict()
	tr, err := Generate(Config{Profile: IMDB, Scale: 30000, Seed: 5}, dict)
	if err != nil {
		t.Fatal(err)
	}
	movie, _ := dict.Lookup("movie")
	actor, _ := dict.Lookup("actor")
	keyword, _ := dict.Lookup("keyword")
	var xs, ys []float64
	for _, m := range tr.NodesByLabel(movie) {
		var nc, nk float64
		for _, c := range tr.Children(m) {
			switch tr.Label(c) {
			case actor:
				nc++
			case keyword:
				nk++
			}
		}
		xs = append(xs, nc)
		ys = append(ys, nk)
	}
	if len(xs) < 50 {
		t.Fatalf("only %d movies generated", len(xs))
	}
	if corr := correlation(xs, ys); corr < 0.25 {
		t.Fatalf("actor/keyword correlation %.2f, want >= 0.25", corr)
	}
}

func TestNASASiblingIndependence(t *testing.T) {
	// NASA's per-record counts are drawn independently: author count and
	// reference count should be (nearly) uncorrelated.
	dict := labeltree.NewDict()
	tr, err := Generate(Config{Profile: NASA, Scale: 30000, Seed: 5}, dict)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := dict.Lookup("dataset")
	authors, _ := dict.Lookup("authors")
	refs, _ := dict.Lookup("references")
	var xs, ys []float64
	for _, m := range tr.NodesByLabel(ds) {
		var na, nr float64
		for _, c := range tr.Children(m) {
			switch tr.Label(c) {
			case authors:
				na = float64(len(tr.Children(c)))
			case refs:
				nr = float64(len(tr.Children(c)))
			}
		}
		xs = append(xs, na)
		ys = append(ys, nr)
	}
	if corr := correlation(xs, ys); corr > 0.15 || corr < -0.15 {
		t.Fatalf("author/reference correlation %.2f, want ~0", corr)
	}
}

func correlation(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
