// Package faultinject wraps the system's storage and corpus surfaces with
// injectable latency, errors, and panics, so resilience tests can push the
// serving stack into the failure modes production will eventually find on
// its own: slow stores that blow deadline budgets, erroring backends, and
// handlers that panic mid-request.
//
// Fault schedules are deterministic: errors and panics fire on a fixed
// cadence of operation indices (every Nth operation), and jittered latency
// draws from a seeded generator, so a failing resilience test replays
// exactly. The package is test infrastructure but lives outside _test
// files so cmd-level harnesses and other packages' tests can import it.
package faultinject

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/metrics"
)

// ErrInjected is the error returned by operations the schedule marks as
// failing.
var ErrInjected = errors.New("faultinject: injected error")

// PanicValue is what injected panics carry, so recovery layers (and tests
// asserting on recovered values) can recognize them.
const PanicValue = "faultinject: injected panic"

// Options configures an Injector.
type Options struct {
	// Latency is added to every operation. With a context-carrying
	// operation the sleep is cancellable; otherwise it is a plain sleep.
	Latency time.Duration
	// LatencyJitter adds a uniformly distributed extra [0, Jitter) per
	// operation, drawn from the seeded generator.
	LatencyJitter time.Duration
	// ErrorEvery makes every Nth operation return ErrInjected (0 = never).
	ErrorEvery int
	// PanicEvery makes every Nth operation panic with PanicValue
	// (0 = never). Panics take precedence over errors when both fire.
	PanicEvery int
	// Seed seeds the jitter generator.
	Seed int64
}

// Injector decides, per operation, which fault to inject. Safe for
// concurrent use.
type Injector struct {
	opts   Options
	ops    atomic.Uint64
	errs   atomic.Uint64
	panics atomic.Uint64

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds an injector.
func New(opts Options) *Injector {
	return &Injector{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Op applies one operation's faults: sleeps the configured latency
// (cancellably when ctx is non-nil), then panics or errors if this
// operation's index is on the schedule. Returns ctx.Err() when the sleep
// was cut short.
func (i *Injector) Op(ctx context.Context) error {
	n := i.ops.Add(1)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if d := i.delay(); d > 0 {
		if ctx != nil {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		} else {
			time.Sleep(d)
		}
	}
	if e := i.opts.PanicEvery; e > 0 && n%uint64(e) == 0 {
		i.panics.Add(1)
		panic(PanicValue)
	}
	if e := i.opts.ErrorEvery; e > 0 && n%uint64(e) == 0 {
		i.errs.Add(1)
		return ErrInjected
	}
	return nil
}

func (i *Injector) delay() time.Duration {
	d := i.opts.Latency
	if j := i.opts.LatencyJitter; j > 0 {
		i.mu.Lock()
		d += time.Duration(i.rng.Int63n(int64(j)))
		i.mu.Unlock()
	}
	return d
}

// Stats reports how many operations ran and how many faults fired.
func (i *Injector) Stats() (ops, errs, panics uint64) {
	return i.ops.Load(), i.errs.Load(), i.panics.Load()
}

// Store wraps an estimate.Store with the injector: every CountKey lookup
// — the decomposition recursion's hot call — pays the injected latency and
// may panic. (Store methods cannot return errors, so ErrorEvery does not
// apply here.) Use it to make estimates arbitrarily slow relative to a
// deadline budget without inflating the test corpus.
type Store struct {
	inner estimate.Store
	inj   *Injector
}

var _ estimate.Store = (*Store)(nil)

// WrapStore wraps inner with inj.
func WrapStore(inner estimate.Store, inj *Injector) *Store {
	return &Store{inner: inner, inj: inj}
}

// Count implements estimate.Store.
func (s *Store) Count(p labeltree.Pattern) (int64, bool) {
	_ = s.inj.Op(nil)
	return s.inner.Count(p)
}

// CountKey implements estimate.Store.
func (s *Store) CountKey(key labeltree.Key) (int64, bool) {
	_ = s.inj.Op(nil)
	return s.inner.CountKey(key)
}

// K implements estimate.Store.
func (s *Store) K() int { return s.inner.K() }

// Pruned implements estimate.Store.
func (s *Store) Pruned() bool { return s.inner.Pruned() }

// CorpusBackend is the corpus surface the serving layer consumes,
// restated structurally so this package does not import internal/serve
// (whose tests import this package). *corpus.Corpus satisfies it, as does
// serve.Backend.
type CorpusBackend interface {
	Summary() *core.Summary
	Docs() []string
	Workers() int
	SetWorkers(n int)
	BuildTimings() *metrics.BuildTimings
	ExactCountContext(ctx context.Context, q labeltree.Pattern) (int64, error)
	AddXMLContext(ctx context.Context, name string, r io.Reader) error
	Remove(name string) error
	Ingesting() bool
	IngestStats() core.IngestStats
}

// Corpus wraps a corpus backend with the injector on its expensive
// operations: exact counting (the Definition-1 scan /v1/exact runs),
// document ingestion, and removal. Cheap accessors pass through
// untouched.
type Corpus struct {
	inner CorpusBackend
	inj   *Injector
}

var _ CorpusBackend = (*Corpus)(nil)

// WrapCorpus wraps inner with inj.
func WrapCorpus(inner CorpusBackend, inj *Injector) *Corpus {
	return &Corpus{inner: inner, inj: inj}
}

// Summary passes through.
func (c *Corpus) Summary() *core.Summary { return c.inner.Summary() }

// Docs passes through.
func (c *Corpus) Docs() []string { return c.inner.Docs() }

// Workers passes through.
func (c *Corpus) Workers() int { return c.inner.Workers() }

// SetWorkers passes through.
func (c *Corpus) SetWorkers(n int) { c.inner.SetWorkers(n) }

// BuildTimings passes through.
func (c *Corpus) BuildTimings() *metrics.BuildTimings { return c.inner.BuildTimings() }

// ExactCountContext injects before delegating.
func (c *Corpus) ExactCountContext(ctx context.Context, q labeltree.Pattern) (int64, error) {
	if err := c.inj.Op(ctx); err != nil {
		return 0, err
	}
	return c.inner.ExactCountContext(ctx, q)
}

// AddXMLContext injects before delegating.
func (c *Corpus) AddXMLContext(ctx context.Context, name string, r io.Reader) error {
	if err := c.inj.Op(ctx); err != nil {
		return err
	}
	return c.inner.AddXMLContext(ctx, name, r)
}

// Remove injects before delegating.
func (c *Corpus) Remove(name string) error {
	if err := c.inj.Op(nil); err != nil {
		return err
	}
	return c.inner.Remove(name)
}

// Ingesting passes through.
func (c *Corpus) Ingesting() bool { return c.inner.Ingesting() }

// IngestStats passes through.
func (c *Corpus) IngestStats() core.IngestStats { return c.inner.IngestStats() }
