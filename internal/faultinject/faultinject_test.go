package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestErrorSchedule: errors fire on exactly the scheduled operation
// indices, deterministically.
func TestErrorSchedule(t *testing.T) {
	inj := New(Options{ErrorEvery: 3})
	var got []int
	for i := 1; i <= 9; i++ {
		if err := inj.Op(context.Background()); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: %v", i, err)
			}
			got = append(got, i)
		}
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 6 || got[2] != 9 {
		t.Fatalf("errors fired at %v, want [3 6 9]", got)
	}
	ops, errs, panics := inj.Stats()
	if ops != 9 || errs != 3 || panics != 0 {
		t.Fatalf("stats = %d/%d/%d, want 9/3/0", ops, errs, panics)
	}
}

// TestPanicSchedule: the scheduled panic fires with PanicValue and takes
// precedence over a same-index error.
func TestPanicSchedule(t *testing.T) {
	inj := New(Options{PanicEvery: 2, ErrorEvery: 2})
	if err := inj.Op(context.Background()); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	func() {
		defer func() {
			if r := recover(); r != PanicValue {
				t.Fatalf("recovered %v, want %q", r, PanicValue)
			}
		}()
		_ = inj.Op(context.Background())
		t.Fatal("op 2 did not panic")
	}()
	if _, errs, panics := inj.Stats(); errs != 0 || panics != 1 {
		t.Fatalf("errs/panics = %d/%d, want 0/1", errs, panics)
	}
}

// TestLatencyCancellable: a context deadline cuts an injected sleep short
// and returns the context error.
func TestLatencyCancellable(t *testing.T) {
	inj := New(Options{Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.Op(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestExpiredContextFailsFast: an already-done context short-circuits
// before any injected latency.
func TestExpiredContextFailsFast(t *testing.T) {
	inj := New(Options{Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := inj.Op(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("fail-fast took %v", d)
	}
}

// TestJitterDeterministic: two injectors with the same seed draw the same
// jitter sequence.
func TestJitterDeterministic(t *testing.T) {
	a := New(Options{LatencyJitter: time.Hour, Seed: 42})
	b := New(Options{LatencyJitter: time.Hour, Seed: 42})
	for i := 0; i < 16; i++ {
		if da, db := a.delay(), b.delay(); da != db {
			t.Fatalf("draw %d: %v != %v", i, da, db)
		}
	}
}
