package experiments

import (
	"treelattice/internal/datagen"
	"treelattice/internal/metrics"
	"treelattice/internal/online"
)

// AdaptationRow is one pass of the online-tuning experiment: replay the
// positive workload, record the average error, then feed the true
// cardinalities back (as if the queries had executed).
type AdaptationRow struct {
	Dataset     datagen.Profile
	Pass        int
	AvgErrPct   float64
	Corrections int
	UsedBytes   int
}

// Adaptation runs the XPathLearner-style feedback loop for the given
// number of passes over each dataset's positive workload, with a
// correction budget proportional to the summary size.
func (s *Suite) Adaptation(passes int) ([]AdaptationRow, error) {
	var rows []AdaptationRow
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		sanity := e.sanity()
		budget := e.Summary.SizeBytes() / 4
		if budget < 512 {
			budget = 512
		}
		tuner := online.NewTuner(e.Summary.Lattice(), budget)
		for pass := 1; pass <= passes; pass++ {
			var errs []float64
			for _, size := range s.Cfg.Sizes {
				for _, q := range e.Positive[size] {
					est := tuner.Estimate(q.Pattern)
					errs = append(errs, metrics.AbsError(float64(q.TrueCount), est, sanity))
				}
			}
			rows = append(rows, AdaptationRow{
				Dataset:     p,
				Pass:        pass,
				AvgErrPct:   100 * metrics.Mean(errs),
				Corrections: tuner.Corrections(),
				UsedBytes:   tuner.UsedBytes(),
			})
			for _, size := range s.Cfg.Sizes {
				for _, q := range e.Positive[size] {
					tuner.Feedback(q.Pattern, q.TrueCount)
				}
			}
		}
	}
	return rows, nil
}
