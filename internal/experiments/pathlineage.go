package experiments

import (
	"math/rand"

	"treelattice/internal/bloomhist"
	"treelattice/internal/cst"
	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
	"treelattice/internal/metrics"
	"treelattice/internal/pathtree"
)

// PathLineageRow is one point of the path-selectivity lineage comparison
// the paper's related work recounts: the Markov table (which TreeLattice
// provably subsumes, Lemma 4) against the path tree, the Bloom histogram,
// and CST on pure path workloads.
type PathLineageRow struct {
	Dataset   datagen.Profile
	Length    int
	Estimator string
	AvgErrPct float64
}

// PathEstimatorNames lists the path-lineage comparison set.
var PathEstimatorNames = []string{"markov", "pathtree", "bloomhist", "cst"}

// PathLineage samples positive path workloads per length and evaluates
// the lineage. Lengths beyond the summaries' stored length exercise each
// method's extension behaviour (Markov extension vs. nothing).
func (s *Suite) PathLineage() ([]PathLineageRow, error) {
	lengths := []int{2, 3, 4, 5, 6}
	var rows []PathLineageRow
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		tb := markov.Build(e.Tree, s.Cfg.K)
		pt := pathtree.Build(e.Tree, pathtree.Options{})
		bh := bloomhist.Build(e.Tree, bloomhist.Options{MaxPathLen: s.Cfg.K})
		ct := cst.Build(e.Tree, cst.Options{MaxPathLen: s.Cfg.K})
		ests := map[string]func([]labeltree.LabelID) float64{
			"markov":   tb.Estimate,
			"pathtree": pt.EstimatePath,
			"bloomhist": func(ls []labeltree.LabelID) float64 {
				if len(ls) > s.Cfg.K {
					return 0 // bloom histograms do not extend beyond L
				}
				v, _ := bh.EstimatePath(ls)
				return v
			},
			"cst": ct.PathCount,
		}
		for _, length := range lengths {
			paths, counts := samplePaths(e, length, s.Cfg.PerSize, s.Cfg.Seed)
			if len(paths) == 0 {
				continue
			}
			sanity := metrics.SanityBound(counts)
			for _, name := range PathEstimatorNames {
				fn := ests[name]
				var errs []float64
				for i, path := range paths {
					errs = append(errs, metrics.AbsError(float64(counts[i]), fn(path), sanity))
				}
				rows = append(rows, PathLineageRow{
					Dataset: p, Length: length, Estimator: name,
					AvgErrPct: 100 * metrics.Mean(errs),
				})
			}
		}
	}
	return rows, nil
}

// samplePaths draws distinct positive downward label paths of the given
// length by walking up from random nodes, with true counts.
func samplePaths(e *Env, length, perLength int, seed int64) ([][]labeltree.LabelID, []int64) {
	rng := rand.New(rand.NewSource(seed + int64(length)))
	seen := make(map[string]bool)
	var paths [][]labeltree.LabelID
	var counts []int64
	for attempt := 0; attempt < perLength*100 && len(paths) < perLength; attempt++ {
		v := int32(rng.Intn(e.Tree.Size()))
		chain := make([]labeltree.LabelID, 0, length)
		at := v
		for len(chain) < length && at >= 0 {
			chain = append(chain, e.Tree.Label(at))
			at = e.Tree.Parent(at)
		}
		if len(chain) < length {
			continue
		}
		// chain is leaf-to-root; reverse to a downward path.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		key := ""
		for _, l := range chain {
			key += string(rune(l)) + "/"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		count := e.Counter.Count(labeltree.PathPattern(chain...))
		if count == 0 {
			continue
		}
		paths = append(paths, chain)
		counts = append(counts, count)
	}
	return paths, counts
}
