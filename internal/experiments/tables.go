package experiments

import (
	"time"

	"treelattice/internal/datagen"
	"treelattice/internal/mine"
)

// Table1Row is one dataset-characteristics row (Table 1 of the paper).
type Table1Row struct {
	Dataset  datagen.Profile
	Elements int
	FileKB   int64
	Labels   int
	MaxDepth int
}

// Table1 reports the characteristics of the generated datasets.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		size, err := e.XMLSize()
		if err != nil {
			return nil, err
		}
		st := e.Tree.Stats()
		rows = append(rows, Table1Row{
			Dataset:  p,
			Elements: st.Nodes,
			FileKB:   size >> 10,
			Labels:   st.Labels,
			MaxDepth: st.MaxDepth,
		})
	}
	return rows, nil
}

// Table2Row reports the number of distinct occurred subtree patterns per
// level (Table 2 of the paper).
type Table2Row struct {
	Level    int
	Patterns map[datagen.Profile]int
}

// Table2 mines each dataset to level 5 and counts patterns per level.
func (s *Suite) Table2() ([]Table2Row, error) {
	const levels = 5
	rows := make([]Table2Row, levels)
	for i := range rows {
		rows[i] = Table2Row{Level: i + 1, Patterns: make(map[datagen.Profile]int)}
	}
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		sizes, err := mine.CountPerLevel(e.Tree, levels, mine.Options{})
		if err != nil {
			return nil, err
		}
		for l := 1; l <= levels; l++ {
			rows[l-1].Patterns[p] = sizes[l]
		}
	}
	return rows, nil
}

// Table3Row compares summary construction cost and size (Table 3).
type Table3Row struct {
	Dataset     datagen.Profile
	LatticeTime time.Duration
	SketchTime  time.Duration
	LatticeKB   float64
	SketchKB    float64
}

// Table3 reports construction time and memory utilization for TreeLattice
// (K-lattice) versus TreeSketches (fixed budget).
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Dataset:     p,
			LatticeTime: e.SummaryBuild,
			SketchTime:  e.SketchBuild,
			LatticeKB:   float64(e.Summary.SizeBytes()) / 1024,
			SketchKB:    float64(e.Sketch.SizeBytes()) / 1024,
		})
	}
	return rows, nil
}
