package experiments

import (
	"fmt"
	"io"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treesketch"
	"treelattice/internal/workload"
	"treelattice/internal/xmlparse"
)

// Env bundles everything built for one dataset: the document, the
// TreeLattice summary, the TreeSketches synopsis, workloads, and build
// timings. Envs are built lazily and cached by the Suite.
type Env struct {
	Profile datagen.Profile
	Dict    *labeltree.Dict
	Tree    *labeltree.Tree
	Counter *match.Counter

	Summary      *core.Summary // K-lattice
	SummaryBuild time.Duration
	Sketch       *treesketch.Synopsis
	SketchBuild  time.Duration

	Positive map[int][]workload.Query
	Negative map[int][]workload.Query
}

// Suite lazily builds and caches per-dataset environments for one Config.
type Suite struct {
	Cfg  Config
	envs map[datagen.Profile]*Env
}

// NewSuite returns a suite for cfg (zero fields take defaults).
func NewSuite(cfg Config) *Suite {
	cfg.fill()
	return &Suite{Cfg: cfg, envs: make(map[datagen.Profile]*Env)}
}

// Env returns the cached environment for profile, building it on first
// use.
func (s *Suite) Env(profile datagen.Profile) (*Env, error) {
	if e, ok := s.envs[profile]; ok {
		return e, nil
	}
	dict := labeltree.NewDict()
	tree, err := datagen.Generate(datagen.Config{Profile: profile, Scale: s.Cfg.Scale, Seed: s.Cfg.Seed}, dict)
	if err != nil {
		return nil, err
	}
	e := &Env{Profile: profile, Dict: dict, Tree: tree, Counter: match.NewCounter(tree)}

	start := time.Now()
	e.Summary, err = core.Build(tree, core.BuildOptions{K: s.Cfg.K})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s summary: %w", profile, err)
	}
	e.SummaryBuild = time.Since(start)

	start = time.Now()
	e.Sketch = treesketch.Build(tree, treesketch.Options{BudgetBytes: s.Cfg.SketchBudget})
	e.SketchBuild = time.Since(start)

	wopts := workload.Options{Sizes: s.Cfg.Sizes, PerSize: s.Cfg.PerSize, Seed: s.Cfg.Seed}
	e.Positive, err = workload.Positive(tree, wopts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s workload: %w", profile, err)
	}
	e.Negative, err = workload.Negative(tree, e.Positive, wopts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s negative workload: %w", profile, err)
	}
	s.envs[profile] = e
	return e, nil
}

// XMLSize serializes the document and reports its size in bytes (the
// "file size" column of Table 1).
func (e *Env) XMLSize() (int64, error) {
	var cw countingWriter
	if err := xmlparse.Write(&cw, e.Tree); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)
