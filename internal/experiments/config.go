// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment is a function returning typed
// rows; cmd/twigbench renders them as text tables and the root package's
// benchmarks re-run them under the testing harness. DESIGN.md carries the
// per-experiment index mapping experiment IDs to these functions.
package experiments

import (
	"os"
	"strconv"

	"treelattice/internal/datagen"
)

// Config parameterizes a whole experiment suite run.
type Config struct {
	// Scale is the approximate element count of each generated dataset.
	// The paper's datasets have 150k–570k elements; the default here is
	// sized so the full suite runs in minutes on a laptop. Raise it (or
	// set TWIG_SCALE) for closer-to-paper conditions — shapes, not
	// absolute numbers, are the reproduction target.
	Scale int
	// Seed drives all dataset and workload generation.
	Seed int64
	// K is the lattice level (paper default: 4).
	K int
	// Sizes are the query sizes per workload level (paper: 4–8).
	Sizes []int
	// PerSize is the number of positive queries per size.
	PerSize int
	// SketchBudget is the TreeSketches memory budget in bytes (paper:
	// 50 KB).
	SketchBudget int
	// Profiles are the datasets to run; default all four.
	Profiles []datagen.Profile
}

// DefaultConfig returns the suite configuration used by cmd/twigbench and
// the benchmarks. TWIG_SCALE overrides the dataset scale.
func DefaultConfig() Config {
	cfg := Config{
		Scale:        20000,
		Seed:         42,
		K:            4,
		Sizes:        []int{4, 5, 6, 7, 8},
		PerSize:      50,
		SketchBudget: 50 << 10,
		Profiles:     datagen.AllProfiles(),
	}
	if v := os.Getenv("TWIG_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.Scale = n
		}
	}
	return cfg
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.K == 0 {
		c.K = d.K
	}
	if len(c.Sizes) == 0 {
		c.Sizes = d.Sizes
	}
	if c.PerSize == 0 {
		c.PerSize = d.PerSize
	}
	if c.SketchBudget == 0 {
		c.SketchBudget = d.SketchBudget
	}
	if len(c.Profiles) == 0 {
		c.Profiles = d.Profiles
	}
}
