package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// RunAll executes every experiment and renders a textual report mirroring
// the paper's tables and figures. It is what cmd/twigbench prints.
func (s *Suite) RunAll(w io.Writer) error {
	fmt.Fprintf(w, "TreeLattice evaluation suite (scale=%d, K=%d, seed=%d, sketch budget=%dKB)\n\n",
		s.Cfg.Scale, s.Cfg.K, s.Cfg.Seed, s.Cfg.SketchBudget>>10)

	if err := s.renderTable1(w); err != nil {
		return err
	}
	if err := s.renderTable2(w); err != nil {
		return err
	}
	if err := s.renderTable3(w); err != nil {
		return err
	}
	if err := s.renderFigure7(w); err != nil {
		return err
	}
	if err := s.renderFigure8(w); err != nil {
		return err
	}
	if err := s.renderFigure9(w); err != nil {
		return err
	}
	if err := s.renderFigure10(w); err != nil {
		return err
	}
	if err := renderFigure11(w); err != nil {
		return err
	}
	if err := s.renderNegative(w); err != nil {
		return err
	}
	if err := s.renderExtended(w); err != nil {
		return err
	}
	if err := s.renderPathLineage(w); err != nil {
		return err
	}
	return s.renderAdaptation(w)
}

func (s *Suite) renderAdaptation(w io.Writer) error {
	rows, err := s.Adaptation(3)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Online adaptation (beyond the paper): workload replay with feedback ==")
	t := tw(w)
	fmt.Fprintln(t, "dataset\tpass\tavg err(%)\tcorrections\tused(B)")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%d\t%.1f\t%d\t%d\n", r.Dataset, r.Pass, r.AvgErrPct, r.Corrections, r.UsedBytes)
	}
	t.Flush()
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderPathLineage(w io.Writer) error {
	rows, err := s.PathLineage()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Path lineage (beyond the paper): avg error (%) on path queries by length ==")
	for _, p := range s.Cfg.Profiles {
		fmt.Fprintf(w, "-- %s --\n", p)
		t := tw(w)
		fmt.Fprint(t, "length")
		for _, n := range PathEstimatorNames {
			fmt.Fprintf(t, "\t%s", n)
		}
		fmt.Fprintln(t)
		for _, length := range []int{2, 3, 4, 5, 6} {
			printed := false
			for _, n := range PathEstimatorNames {
				for _, r := range rows {
					if r.Dataset == p && r.Length == length && r.Estimator == n {
						if !printed {
							fmt.Fprintf(t, "%d", length)
							printed = true
						}
						fmt.Fprintf(t, "\t%.1f", r.AvgErrPct)
					}
				}
			}
			if printed {
				fmt.Fprintln(t)
			}
		}
		t.Flush()
	}
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderExtended(w io.Writer) error {
	rows, err := s.ExtendedBaselines()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Extended baselines (beyond the paper): avg error (%) by query size ==")
	for _, p := range s.Cfg.Profiles {
		fmt.Fprintf(w, "-- %s --\n", p)
		t := tw(w)
		fmt.Fprint(t, "size")
		for _, n := range ExtendedEstimatorNames {
			fmt.Fprintf(t, "\t%s", n)
		}
		fmt.Fprintln(t)
		for _, size := range s.Cfg.Sizes {
			fmt.Fprintf(t, "%d", size)
			for _, n := range ExtendedEstimatorNames {
				for _, r := range rows {
					if r.Dataset == p && r.Size == size && r.Estimator == n {
						fmt.Fprintf(t, "\t%.1f", r.AvgErrPct)
					}
				}
			}
			fmt.Fprintln(t)
		}
		t.Flush()
	}
	fmt.Fprintln(w)
	return nil
}

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func (s *Suite) renderTable1(w io.Writer) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table 1: dataset characteristics ==")
	t := tw(w)
	fmt.Fprintln(t, "dataset\telements\tfile(KB)\tlabels\tdepth")
	for _, r := range rows {
		fmt.Fprintf(t, "%s\t%d\t%d\t%d\t%d\n", r.Dataset, r.Elements, r.FileKB, r.Labels, r.MaxDepth)
	}
	t.Flush()
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderTable2(w io.Writer) error {
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table 2: number of subtree patterns per level ==")
	t := tw(w)
	fmt.Fprint(t, "level")
	for _, p := range s.Cfg.Profiles {
		fmt.Fprintf(t, "\t%s", p)
	}
	fmt.Fprintln(t)
	for _, r := range rows {
		fmt.Fprintf(t, "%d", r.Level)
		for _, p := range s.Cfg.Profiles {
			fmt.Fprintf(t, "\t%d", r.Patterns[p])
		}
		fmt.Fprintln(t)
	}
	t.Flush()
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderTable3(w io.Writer) error {
	rows, err := s.Table3()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table 3: summary construction time and memory utilization ==")
	t := tw(w)
	fmt.Fprintln(t, "dataset\tlattice time\tsketch time\tspeedup\tlattice(KB)\tsketch(KB)")
	for _, r := range rows {
		speedup := float64(r.SketchTime) / float64(r.LatticeTime)
		fmt.Fprintf(t, "%s\t%v\t%v\t%.1fx\t%.1f\t%.1f\n",
			r.Dataset, r.LatticeTime.Round(timeUnit(r.LatticeTime)), r.SketchTime.Round(timeUnit(r.SketchTime)), speedup, r.LatticeKB, r.SketchKB)
	}
	t.Flush()
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderFigure7(w io.Writer) error {
	rows, err := s.Figure7()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 7: average selectivity estimation error (%) by query size ==")
	for _, p := range s.Cfg.Profiles {
		fmt.Fprintf(w, "-- %s --\n", p)
		t := tw(w)
		fmt.Fprint(t, "size")
		for _, n := range EstimatorNames {
			fmt.Fprintf(t, "\t%s", n)
		}
		fmt.Fprintln(t)
		for _, size := range s.Cfg.Sizes {
			fmt.Fprintf(t, "%d", size)
			for _, n := range EstimatorNames {
				for _, r := range rows {
					if r.Dataset == p && r.Size == size && r.Estimator == n {
						fmt.Fprintf(t, "\t%.1f", r.AvgErrPct)
					}
				}
			}
			fmt.Fprintln(t)
		}
		t.Flush()
	}
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderFigure8(w io.Writer) error {
	rows, err := s.Figure8()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 8: cumulative error distribution (% of queries with error <= threshold %) ==")
	for _, p := range s.Cfg.Profiles {
		fmt.Fprintf(w, "-- %s --\n", p)
		t := tw(w)
		fmt.Fprint(t, "estimator")
		var printed bool
		for _, r := range rows {
			if r.Dataset != p {
				continue
			}
			if !printed {
				for _, pt := range r.Points {
					fmt.Fprintf(t, "\t%.4g", pt.Threshold)
				}
				fmt.Fprintln(t)
				printed = true
			}
			fmt.Fprintf(t, "%s", r.Estimator)
			for _, pt := range r.Points {
				fmt.Fprintf(t, "\t%.0f", pt.CumPercent)
			}
			fmt.Fprintln(t)
		}
		t.Flush()
	}
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderFigure9(w io.Writer) error {
	rows, err := s.Figure9()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 9: average response time per query ==")
	for _, p := range s.Cfg.Profiles {
		fmt.Fprintf(w, "-- %s --\n", p)
		t := tw(w)
		fmt.Fprint(t, "size")
		for _, n := range EstimatorNames {
			fmt.Fprintf(t, "\t%s", n)
		}
		fmt.Fprintln(t)
		for _, size := range s.Cfg.Sizes {
			fmt.Fprintf(t, "%d", size)
			for _, n := range EstimatorNames {
				for _, r := range rows {
					if r.Dataset == p && r.Size == size && r.Estimator == n {
						fmt.Fprintf(t, "\t%v", r.AvgTime.Round(timeUnit(r.AvgTime)))
					}
				}
			}
			fmt.Fprintln(t)
		}
		t.Flush()
	}
	fmt.Fprintln(w)
	return nil
}

func (s *Suite) renderFigure10(w io.Writer) error {
	aRows, err := s.Figure10a()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 10a: 4-lattice size with/without 0-derivable patterns (KB) ==")
	t := tw(w)
	fmt.Fprintln(t, "dataset\tfull\tpruned\tsaving")
	for _, r := range aRows {
		saving := 0.0
		if r.FullKB > 0 {
			saving = 100 * (1 - r.PrunedKB/r.FullKB)
		}
		fmt.Fprintf(t, "%s\t%.1f\t%.1f\t%.0f%%\n", r.Dataset, r.FullKB, r.PrunedKB, saving)
	}
	t.Flush()
	fmt.Fprintln(w)

	bRows, fullKB, optKB, err := s.Figure10b()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Figure 10b: avg error (%%) on %s, voting vs voting+OPT (pruned %d-lattice, %.1fKB vs full %d-lattice %.1fKB) vs TreeSketches ==\n",
		s.Cfg.Profiles[0], s.Cfg.K+1, optKB, s.Cfg.K, fullKB)
	t = tw(w)
	fmt.Fprintln(t, "size\tvoting\tvoting+OPT\ttreesketches")
	for _, r := range bRows {
		fmt.Fprintf(t, "%d\t%.1f\t%.1f\t%.1f\n", r.Size, r.VotingPct, r.VotingOptPct, r.SketchPct)
	}
	t.Flush()
	fmt.Fprintln(w)

	imdb := s.Cfg.Profiles[0]
	for _, p := range s.Cfg.Profiles {
		if p == "imdb" {
			imdb = p
		}
	}
	cRows, dRows, err := s.Figure10cd(imdb)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Figure 10c: summary size under delta-pruning (%s) ==\n", imdb)
	t = tw(w)
	fmt.Fprintln(t, "delta(%)\tsize(KB)")
	for _, r := range cRows {
		fmt.Fprintf(t, "%d\t%.1f\n", r.DeltaPct, r.SizeKB)
	}
	t.Flush()
	fmt.Fprintln(w)

	fmt.Fprintf(w, "== Figure 10d: avg error (%%) under delta-pruning (%s, voting estimator) ==\n", imdb)
	t = tw(w)
	fmt.Fprint(t, "size")
	for _, d := range []int{0, 10, 20, 30} {
		fmt.Fprintf(t, "\tdelta=%d%%", d)
	}
	fmt.Fprintln(t)
	for _, size := range s.Cfg.Sizes {
		fmt.Fprintf(t, "%d", size)
		for _, d := range []int{0, 10, 20, 30} {
			for _, r := range dRows {
				if r.Size == size && r.DeltaPct == d {
					fmt.Fprintf(t, "\t%.1f", r.AvgErrPct)
				}
			}
		}
		fmt.Fprintln(t)
	}
	t.Flush()
	fmt.Fprintln(w)
	return nil
}

func renderFigure11(w io.Writer) error {
	r, err := Figure11()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 11: worked example ==")
	fmt.Fprintf(w, "query %s: true=%d treelattice=%.1f treesketches=%.1f\n\n",
		r.Query, r.TrueCount, r.TreeLattice, r.Sketch)
	return nil
}

func (s *Suite) renderNegative(w io.Writer) error {
	rows, err := s.Negative()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Negative workloads: % of zero-selectivity queries answered exactly 0 ==")
	t := tw(w)
	fmt.Fprint(t, "dataset\tqueries")
	for _, n := range EstimatorNames {
		fmt.Fprintf(t, "\t%s", n)
	}
	fmt.Fprintln(t)
	for _, p := range s.Cfg.Profiles {
		var queries int
		vals := make(map[string]float64)
		for _, r := range rows {
			if r.Dataset == p {
				queries = r.Queries
				vals[r.Estimator] = r.ZeroPct
			}
		}
		fmt.Fprintf(t, "%s\t%d", p, queries)
		for _, n := range EstimatorNames {
			fmt.Fprintf(t, "\t%.1f", vals[n])
		}
		fmt.Fprintln(t)
	}
	t.Flush()
	fmt.Fprintln(w)
	return nil
}

// timeUnit picks a rounding unit that keeps durations readable.
func timeUnit(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return 10 * time.Millisecond
	case d >= time.Millisecond:
		return 10 * time.Microsecond
	default:
		return 100 * time.Nanosecond
	}
}
