package experiments

import (
	"bytes"
	"strings"
	"testing"

	"treelattice/internal/datagen"
)

// smallCfg keeps the full-suite smoke test fast.
func smallCfg() Config {
	return Config{
		Scale:        2500,
		Seed:         7,
		K:            3,
		Sizes:        []int{4, 5},
		PerSize:      10,
		SketchBudget: 8 << 10,
	}
}

func TestTable1(t *testing.T) {
	s := NewSuite(smallCfg())
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Elements < 2000 || r.FileKB <= 0 || r.Labels < 15 {
			t.Fatalf("implausible row %+v", r)
		}
	}
}

func TestTable2LevelsGrow(t *testing.T) {
	s := NewSuite(smallCfg())
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("levels = %d, want 5", len(rows))
	}
	for _, p := range s.Cfg.Profiles {
		if rows[0].Patterns[p] < 15 {
			t.Fatalf("%s: level-1 patterns = %d", p, rows[0].Patterns[p])
		}
		// Pattern counts blow up with level (Table 2's shape).
		if rows[4].Patterns[p] <= rows[1].Patterns[p] {
			t.Fatalf("%s: level 5 (%d) not larger than level 2 (%d)",
				p, rows[4].Patterns[p], rows[1].Patterns[p])
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	s := NewSuite(smallCfg())
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LatticeTime <= 0 || r.SketchTime <= 0 {
			t.Fatalf("missing timings: %+v", r)
		}
		if r.LatticeKB <= 0 || r.SketchKB <= 0 {
			t.Fatalf("missing sizes: %+v", r)
		}
	}
}

func TestFigure7ShapeOnXMark(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.XMark}
	cfg.Scale = 6000
	s := NewSuite(cfg)
	rows, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// The headline qualitative result: on XMark-like data the voting
	// estimator beats TreeSketches on average across sizes.
	var voting, sketch float64
	for _, r := range rows {
		switch r.Estimator {
		case "recursive+voting":
			voting += r.AvgErrPct
		case "treesketches":
			sketch += r.AvgErrPct
		}
	}
	if voting >= sketch {
		t.Fatalf("voting total error %.1f not below treesketches %.1f on xmark", voting, sketch)
	}
}

func TestFigure8Monotone(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.NASA}
	s := NewSuite(cfg)
	rows, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for i := 1; i < len(r.Points); i++ {
			if r.Points[i].CumPercent < r.Points[i-1].CumPercent {
				t.Fatalf("%s: CDF not monotone", r.Estimator)
			}
		}
		last := r.Points[len(r.Points)-1]
		if last.CumPercent < 50 {
			t.Fatalf("%s: CDF tops out at %.0f%%", r.Estimator, last.CumPercent)
		}
	}
}

func TestFigure9Positive(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.PSD}
	s := NewSuite(cfg)
	rows, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.AvgTime < 0 {
			t.Fatalf("negative time: %+v", r)
		}
	}
}

func TestFigure10aSavings(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.NASA}
	s := NewSuite(cfg)
	rows, err := s.Figure10a()
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.PrunedKB >= r.FullKB {
		t.Fatalf("0-derivable pruning saved nothing: %+v", r)
	}
}

func TestFigure10bRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.NASA}
	s := NewSuite(cfg)
	rows, fullKB, optKB, err := s.Figure10b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Sizes) || fullKB <= 0 || optKB <= 0 {
		t.Fatalf("rows=%d fullKB=%v optKB=%v", len(rows), fullKB, optKB)
	}
}

func TestFigure10cdShapes(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.IMDB}
	s := NewSuite(cfg)
	cRows, dRows, err := s.Figure10cd(datagen.IMDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(cRows) != 4 {
		t.Fatalf("cRows = %d", len(cRows))
	}
	for i := 1; i < len(cRows); i++ {
		if cRows[i].SizeKB > cRows[i-1].SizeKB {
			t.Fatalf("summary size grew with delta: %+v", cRows)
		}
	}
	if len(dRows) != 4*len(cfg.Sizes) {
		t.Fatalf("dRows = %d", len(dRows))
	}
}

func TestFigure11Example(t *testing.T) {
	r, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if r.TrueCount != 38 {
		t.Fatalf("true = %d, want 38", r.TrueCount)
	}
	if r.TreeLattice != 38 {
		t.Fatalf("treelattice = %v, want exact 38", r.TreeLattice)
	}
	if r.Sketch == 38 {
		t.Fatalf("treesketches unexpectedly exact (%v); example is vacuous", r.Sketch)
	}
}

func TestNegativeAccuracy(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.NASA}
	s := NewSuite(cfg)
	rows, err := s.Negative()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Fatalf("%s: no negative queries", r.Estimator)
		}
		// The paper reports >=99% for TreeLattice and 100% for
		// TreeSketches; at small scale allow a little slack.
		if r.ZeroPct < 90 {
			t.Fatalf("%s: only %.1f%% of negative queries answered 0", r.Estimator, r.ZeroPct)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	cfg := smallCfg()
	var buf bytes.Buffer
	if err := NewSuite(cfg).RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10a", "Figure 11", "Negative",
		"Extended baselines", "Path lineage", "Online adaptation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestExtendedBaselines(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.NASA}
	s := NewSuite(cfg)
	rows, err := s.ExtendedBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Sizes)*len(ExtendedEstimatorNames) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgErrPct < 0 {
			t.Fatalf("negative error: %+v", r)
		}
	}
}

func TestPathLineage(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.NASA}
	s := NewSuite(cfg)
	rows, err := s.PathLineage()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Within the stored length, markov and pathtree are exact (error 0)
	// while bloomhist stays within its bucket spread.
	for _, r := range rows {
		if r.Length <= cfg.K && (r.Estimator == "markov" || r.Estimator == "pathtree") && r.AvgErrPct > 1e-6 {
			t.Fatalf("%s at length %d has error %v, want 0", r.Estimator, r.Length, r.AvgErrPct)
		}
		if r.AvgErrPct < 0 {
			t.Fatalf("negative error: %+v", r)
		}
	}
}

func TestAdaptation(t *testing.T) {
	cfg := smallCfg()
	cfg.Profiles = []datagen.Profile{datagen.IMDB}
	s := NewSuite(cfg)
	rows, err := s.Adaptation(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Pass != 1 || rows[1].Pass != 2 {
		t.Fatalf("pass numbering wrong: %+v", rows)
	}
	if rows[1].AvgErrPct > rows[0].AvgErrPct {
		t.Fatalf("feedback increased error: %+v", rows)
	}
	if rows[1].Corrections == 0 && rows[0].AvgErrPct > 1 {
		t.Fatal("no corrections stored despite error")
	}
}
