package experiments

import (
	"sort"
	"strings"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/datagen"
	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/metrics"
	"treelattice/internal/treesketch"
	"treelattice/internal/xmlparse"
)

// EstimatorNames lists the four estimators of Figures 7–9 in presentation
// order.
var EstimatorNames = []string{"recursive", "recursive+voting", "fix-sized", "treesketches"}

// estimators returns the four named estimation functions for an Env.
func (e *Env) estimators() map[string]func(labeltree.Pattern) float64 {
	lat := e.Summary.Lattice()
	rec := estimate.NewRecursive(lat, false)
	vote := estimate.NewRecursive(lat, true)
	fix := estimate.NewFixSized(lat)
	return map[string]func(labeltree.Pattern) float64{
		"recursive":        rec.Estimate,
		"recursive+voting": vote.Estimate,
		"fix-sized":        fix.Estimate,
		"treesketches":     e.Sketch.Estimate,
	}
}

// sanity returns the error-metric sanity bound for the dataset's pooled
// positive workload (Section 5.1).
func (e *Env) sanity() float64 {
	var counts []int64
	for _, qs := range e.Positive {
		for _, q := range qs {
			counts = append(counts, q.TrueCount)
		}
	}
	return metrics.SanityBound(counts)
}

// Figure7Row is one point of Figure 7: the average absolute estimation
// error (percent) for one dataset, query size, and estimator.
type Figure7Row struct {
	Dataset   datagen.Profile
	Size      int
	Estimator string
	AvgErrPct float64
}

// Figure7 evaluates the positive workloads under all four estimators.
func (s *Suite) Figure7() ([]Figure7Row, error) {
	var rows []Figure7Row
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		sanity := e.sanity()
		ests := e.estimators()
		for _, size := range s.Cfg.Sizes {
			for _, name := range EstimatorNames {
				fn := ests[name]
				var errs []float64
				for _, q := range e.Positive[size] {
					est := fn(q.Pattern)
					errs = append(errs, metrics.AbsError(float64(q.TrueCount), est, sanity))
				}
				rows = append(rows, Figure7Row{
					Dataset: p, Size: size, Estimator: name,
					AvgErrPct: 100 * metrics.Mean(errs),
				})
			}
		}
	}
	return rows, nil
}

// Figure8Row is the cumulative error distribution for one dataset and
// estimator over the pooled positive workload (Figure 8).
type Figure8Row struct {
	Dataset   datagen.Profile
	Estimator string
	Points    []metrics.CDFPoint // thresholds in percent
}

// Figure8 computes error CDFs on log-spaced thresholds from 0.1% to
// 10000%, the X axis of the paper's Figure 8.
func (s *Suite) Figure8() ([]Figure8Row, error) {
	thresholds := metrics.LogThresholds(0.1, 10000, 11)
	var rows []Figure8Row
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		sanity := e.sanity()
		for _, name := range EstimatorNames {
			fn := e.estimators()[name]
			var errs []float64
			for _, size := range s.Cfg.Sizes {
				for _, q := range e.Positive[size] {
					errs = append(errs, 100*metrics.AbsError(float64(q.TrueCount), fn(q.Pattern), sanity))
				}
			}
			rows = append(rows, Figure8Row{Dataset: p, Estimator: name, Points: metrics.CDF(errs, thresholds)})
		}
	}
	return rows, nil
}

// Figure9Row is the average estimation response time for one dataset,
// query size, and estimator (Figure 9).
type Figure9Row struct {
	Dataset   datagen.Profile
	Size      int
	Estimator string
	AvgTime   time.Duration
}

// Figure9 measures per-query estimation latency.
func (s *Suite) Figure9() ([]Figure9Row, error) {
	var rows []Figure9Row
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		ests := e.estimators()
		for _, size := range s.Cfg.Sizes {
			qs := e.Positive[size]
			if len(qs) == 0 {
				continue
			}
			for _, name := range EstimatorNames {
				fn := ests[name]
				start := time.Now()
				for _, q := range qs {
					fn(q.Pattern)
				}
				rows = append(rows, Figure9Row{
					Dataset: p, Size: size, Estimator: name,
					AvgTime: time.Since(start) / time.Duration(len(qs)),
				})
			}
		}
	}
	return rows, nil
}

// Figure10aRow compares the 4-lattice size with and without 0-derivable
// patterns (Figure 10a).
type Figure10aRow struct {
	Dataset  datagen.Profile
	FullKB   float64
	PrunedKB float64
}

// Figure10a prunes 0-derivable patterns from each dataset's summary.
func (s *Suite) Figure10a() ([]Figure10aRow, error) {
	var rows []Figure10aRow
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		pruned := e.Summary.Prune(0)
		rows = append(rows, Figure10aRow{
			Dataset:  p,
			FullKB:   float64(e.Summary.SizeBytes()) / 1024,
			PrunedKB: float64(pruned.SizeBytes()) / 1024,
		})
	}
	return rows, nil
}

// Figure10bRow compares, per query size on the first profile (NASA in the
// paper), the voting estimator on the full K-lattice, the voting estimator
// on the OPT summary (0-derivable-pruned (K+1)-lattice occupying
// comparable space), and TreeSketches (Figure 10b).
type Figure10bRow struct {
	Size         int
	VotingPct    float64
	VotingOptPct float64
	SketchPct    float64
}

// Figure10b runs the OPT experiment on the suite's first profile.
func (s *Suite) Figure10b() ([]Figure10bRow, float64, float64, error) {
	e, err := s.Env(s.Cfg.Profiles[0])
	if err != nil {
		return nil, 0, 0, err
	}
	big, err := core.Build(e.Tree, core.BuildOptions{K: s.Cfg.K + 1})
	if err != nil {
		return nil, 0, 0, err
	}
	opt := big.Prune(0)
	sanity := e.sanity()
	vote := estimate.NewRecursive(e.Summary.Lattice(), true)
	voteOpt := estimate.NewRecursive(opt.Lattice(), true)
	var rows []Figure10bRow
	for _, size := range s.Cfg.Sizes {
		var ev, eo, es []float64
		for _, q := range e.Positive[size] {
			truth := float64(q.TrueCount)
			ev = append(ev, metrics.AbsError(truth, vote.Estimate(q.Pattern), sanity))
			eo = append(eo, metrics.AbsError(truth, voteOpt.Estimate(q.Pattern), sanity))
			es = append(es, metrics.AbsError(truth, e.Sketch.Estimate(q.Pattern), sanity))
		}
		rows = append(rows, Figure10bRow{
			Size:         size,
			VotingPct:    100 * metrics.Mean(ev),
			VotingOptPct: 100 * metrics.Mean(eo),
			SketchPct:    100 * metrics.Mean(es),
		})
	}
	fullKB := float64(e.Summary.SizeBytes()) / 1024
	optKB := float64(opt.SizeBytes()) / 1024
	return rows, fullKB, optKB, nil
}

// Figure10cRow reports summary size under δ-derivable pruning for the
// correlation-heavy profile (IMDB in the paper; Figure 10c).
type Figure10cRow struct {
	DeltaPct int
	SizeKB   float64
}

// Figure10dRow reports estimation quality under δ-derivable pruning
// (Figure 10d).
type Figure10dRow struct {
	DeltaPct  int
	Size      int
	AvgErrPct float64
}

// Figure10cd varies δ over {0, 10, 20, 30}% on the given profile and
// reports summary sizes and voting-estimator error per query size.
func (s *Suite) Figure10cd(profile datagen.Profile) ([]Figure10cRow, []Figure10dRow, error) {
	e, err := s.Env(profile)
	if err != nil {
		return nil, nil, err
	}
	sanity := e.sanity()
	var cRows []Figure10cRow
	var dRows []Figure10dRow
	for _, deltaPct := range []int{0, 10, 20, 30} {
		pruned := e.Summary.Prune(float64(deltaPct) / 100)
		cRows = append(cRows, Figure10cRow{DeltaPct: deltaPct, SizeKB: float64(pruned.SizeBytes()) / 1024})
		vote := estimate.NewRecursive(pruned.Lattice(), true)
		for _, size := range s.Cfg.Sizes {
			var errs []float64
			for _, q := range e.Positive[size] {
				errs = append(errs, metrics.AbsError(float64(q.TrueCount), vote.Estimate(q.Pattern), sanity))
			}
			dRows = append(dRows, Figure10dRow{DeltaPct: deltaPct, Size: size, AvgErrPct: 100 * metrics.Mean(errs)})
		}
	}
	return cRows, dRows, nil
}

// Figure11Result is the worked example of Figure 11: the document where
// a coarse TreeSketches synopsis grossly misestimates a small branching
// twig while the 3-lattice answers it exactly.
type Figure11Result struct {
	Query       string
	TrueCount   int64
	TreeLattice float64
	Sketch      float64
}

// Figure11 reproduces the worked example.
func Figure11() (Figure11Result, error) {
	dict := labeltree.NewDict()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<b><c/><c/><c/><c/></b>")
	}
	sb.WriteString("<b><c/><c/></b>")
	sb.WriteString("</r>")
	tree, err := xmlparse.Parse(strings.NewReader(sb.String()), dict, xmlparse.Options{})
	if err != nil {
		return Figure11Result{}, err
	}
	sum, err := core.Build(tree, core.BuildOptions{K: 3})
	if err != nil {
		return Figure11Result{}, err
	}
	sketch := treesketch.Build(tree, treesketch.Options{BudgetBytes: 90})
	q := labeltree.MustParsePattern("b(c,c)", dict)
	latEst, err := sum.Estimate(q, core.MethodRecursive)
	if err != nil {
		return Figure11Result{}, err
	}
	return Figure11Result{
		Query:       "b(c,c)",
		TrueCount:   match.NewCounter(tree).Count(q),
		TreeLattice: latEst,
		Sketch:      sketch.Estimate(q),
	}, nil
}

// NegativeRow reports, per dataset and estimator, the percentage of
// zero-selectivity queries answered exactly 0 (Section 5.1: TreeLattice
// ≳99%, TreeSketches 100%).
type NegativeRow struct {
	Dataset   datagen.Profile
	Estimator string
	ZeroPct   float64
	Queries   int
}

// Negative evaluates the negative workloads.
func (s *Suite) Negative() ([]NegativeRow, error) {
	var rows []NegativeRow
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		ests := e.estimators()
		for _, name := range EstimatorNames {
			fn := ests[name]
			total, zero := 0, 0
			var sizes []int
			for size := range e.Negative {
				sizes = append(sizes, size)
			}
			sort.Ints(sizes)
			for _, size := range sizes {
				for _, q := range e.Negative[size] {
					total++
					if fn(q.Pattern) == 0 {
						zero++
					}
				}
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(zero) / float64(total)
			}
			rows = append(rows, NegativeRow{Dataset: p, Estimator: name, ZeroPct: pct, Queries: total})
		}
	}
	return rows, nil
}
