package experiments

import (
	"treelattice/internal/cst"
	"treelattice/internal/datagen"
	"treelattice/internal/estimate"
	"treelattice/internal/labeltree"
	"treelattice/internal/metrics"
	"treelattice/internal/statix"
	"treelattice/internal/xsketch"
)

// ExtendedRow is one point of the extended-baselines comparison: beyond
// the paper's TreeSketches comparison, the whole related-work lineage —
// XSketch (the TreeSketches predecessor) and CST (set-hashing sub-path
// trees) — against the voting estimator on the same workloads.
type ExtendedRow struct {
	Dataset   datagen.Profile
	Size      int
	Estimator string
	AvgErrPct float64
}

// ExtendedEstimatorNames lists the extended comparison set.
var ExtendedEstimatorNames = []string{"recursive+voting", "treesketches", "xsketch", "statix", "cst"}

// ExtendedBaselines evaluates the lineage baselines. XSketch uses the
// same memory budget as TreeSketches; CST stores paths up to K with its
// default signatures.
func (s *Suite) ExtendedBaselines() ([]ExtendedRow, error) {
	var rows []ExtendedRow
	for _, p := range s.Cfg.Profiles {
		e, err := s.Env(p)
		if err != nil {
			return nil, err
		}
		sanity := e.sanity()
		vote := estimate.NewRecursive(e.Summary.Lattice(), true)
		xs := xsketch.Build(e.Tree, xsketch.Options{BudgetBytes: s.Cfg.SketchBudget})
		ct := cst.Build(e.Tree, cst.Options{MaxPathLen: s.Cfg.K})
		sx := statix.Build(e.Tree, statix.Options{})
		ests := map[string]func(labeltree.Pattern) float64{
			"recursive+voting": vote.Estimate,
			"treesketches":     e.Sketch.Estimate,
			"xsketch":          xs.Estimate,
			"statix":           sx.Estimate,
			"cst":              ct.Estimate,
		}
		for _, size := range s.Cfg.Sizes {
			for _, name := range ExtendedEstimatorNames {
				fn := ests[name]
				var errs []float64
				for _, q := range e.Positive[size] {
					errs = append(errs, metrics.AbsError(float64(q.TrueCount), fn(q.Pattern), sanity))
				}
				rows = append(rows, ExtendedRow{
					Dataset: p, Size: size, Estimator: name,
					AvgErrPct: 100 * metrics.Mean(errs),
				})
			}
		}
	}
	return rows, nil
}
