package match

import "treelattice/internal/labeltree"

// BruteCount counts matches by exhaustive enumeration of mappings. It is
// exponential and exists to cross-check the DP counter in tests and to
// document the match semantics executably. limit aborts the enumeration
// once that many matches are found (0 = unlimited).
func BruteCount(t *labeltree.Tree, p labeltree.Pattern, limit int64) int64 {
	n := p.Size()
	assigned := make([]int32, n)
	used := make(map[int32]bool, n)
	var total int64
	var rec func(i int32) bool // returns false to abort
	rec = func(i int32) bool {
		if int(i) == n {
			total++
			return limit == 0 || total < limit
		}
		var candidates []int32
		if i == 0 {
			candidates = t.NodesByLabel(p.Label(0))
		} else {
			candidates = t.Children(assigned[p.Parent(i)])
		}
		for _, v := range candidates {
			if used[v] || t.Label(v) != p.Label(i) {
				continue
			}
			used[v] = true
			assigned[i] = v
			ok := rec(i + 1)
			used[v] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
	return total
}
