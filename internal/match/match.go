// Package match counts exact twig matches: the selectivity s(T) of a twig
// pattern per Definition 1 of the paper — the number of 1-1 mappings from
// pattern nodes to data nodes that preserve labels and parent-child edges.
//
// The counter runs a sparse bottom-up dynamic program over the data tree.
// For a pattern node p and data node v, cnt(p, v) is the number of matches
// of the subtree of p rooted at p that map p to v. For internal nodes the
// pattern children must map to *distinct* data children (the mapping is
// 1-1), which is a matrix permanent; it factorizes into a product of row
// sums when the pattern children carry pairwise distinct labels (the
// common case, and the paper's simplifying assumption) and is otherwise
// computed by a subset DP.
package match

import (
	"context"
	"math"
	"runtime"
	"sync"

	"treelattice/internal/labeltree"
)

// MaxDuplicateChildren bounds the number of children of a single pattern
// node when duplicate sibling labels force the permanent DP. Patterns in
// this system are small (lattice level + query sizes ≤ ~16), so the bound
// is generous.
const MaxDuplicateChildren = 20

// Counter counts matches of patterns against one data tree. It is safe for
// concurrent use after construction.
type Counter struct {
	t *labeltree.Tree
}

// NewCounter returns a Counter over t. It forces construction of the
// label index so that subsequent concurrent Count calls do not race.
func NewCounter(t *labeltree.Tree) *Counter {
	t.NodesByLabel(0) // build index eagerly
	return &Counter{t: t}
}

// Tree returns the data tree the counter was built over.
func (c *Counter) Tree() *labeltree.Tree { return c.t }

// ctxCheckInterval is how many data-node visits pass between cooperative
// context checks in CountContext. Small enough that a deadline interrupts
// an exact count within microseconds of work, large enough that the check
// (a mutex-protected Err on timer contexts) stays off the profile.
const ctxCheckInterval = 256

// ctxCheck amortizes context polling across the counting DP's inner loop.
type ctxCheck struct {
	ctx context.Context
	ops int
}

// tick reports the context error once every ctxCheckInterval calls.
func (cc *ctxCheck) tick() error {
	cc.ops++
	if cc.ops%ctxCheckInterval != 0 {
		return nil
	}
	return cc.ctx.Err()
}

// Count returns the number of matches of p in the data tree. Counts
// saturate at math.MaxInt64 instead of overflowing.
func (c *Counter) Count(p labeltree.Pattern) int64 {
	// Background contexts never report an error, so the cooperative
	// checks in the DP are free no-ops here.
	n, _ := c.CountContext(context.Background(), p)
	return n
}

// CountContext is Count with cooperative cancellation: the dynamic program
// polls ctx at bounded intervals (every ctxCheckInterval data-node visits)
// and aborts with ctx.Err() once ctx is done, so a per-request deadline
// actually interrupts an expensive Definition-1 exact count mid-scan.
func (c *Counter) CountContext(ctx context.Context, p labeltree.Pattern) (int64, error) {
	n := p.Size()
	children := make([][]int32, n)
	for i := int32(1); int(i) < n; i++ {
		children[p.Parent(i)] = append(children[p.Parent(i)], i)
	}
	// maps[i] holds cnt(i, ·) for internal pattern nodes; leaves are
	// handled implicitly (cnt = 1 on label match).
	maps := make([]map[int32]int64, n)
	cc := &ctxCheck{ctx: ctx}
	// Children have larger indices than parents, so descending index
	// order is a children-first traversal.
	for i := int32(n - 1); i >= 0; i-- {
		if len(children[i]) == 0 {
			continue
		}
		var err error
		maps[i], err = c.countInternal(p, i, children[i], maps, cc)
		if err != nil {
			return 0, err
		}
		if len(maps[i]) == 0 && i > 0 {
			return 0, nil // early out: some pattern subtree never occurs
		}
	}
	var total int64
	if len(children[0]) == 0 {
		return int64(len(c.t.NodesByLabel(p.Label(0)))), nil
	}
	for _, v := range maps[0] {
		total = satAdd(total, v)
	}
	return total, nil
}

// countInternal computes cnt(pi, ·) for internal pattern node pi.
func (c *Counter) countInternal(p labeltree.Pattern, pi int32, pcs []int32, maps []map[int32]int64, cc *ctxCheck) (map[int32]int64, error) {
	out := make(map[int32]int64)
	dup := hasDuplicateLabels(p, pcs)
	if dup && len(pcs) > MaxDuplicateChildren {
		panic("match: pattern node exceeds MaxDuplicateChildren with duplicate labels")
	}
	var rows [][]int64 // reused permanent matrix rows
	for _, v := range c.t.NodesByLabel(p.Label(pi)) {
		if err := cc.tick(); err != nil {
			return nil, err
		}
		dcs := c.t.Children(v)
		if len(dcs) < len(pcs) {
			continue
		}
		if !dup {
			// Distinct labels: injectivity is automatic, the count is
			// the product over pattern children of the sum over data
			// children.
			prod := int64(1)
			for _, pc := range pcs {
				var sum int64
				for _, w := range dcs {
					sum = satAdd(sum, childCount(p, pc, w, c.t, maps))
				}
				if sum == 0 {
					prod = 0
					break
				}
				prod = satMul(prod, sum)
			}
			if prod > 0 {
				out[v] = prod
			}
			continue
		}
		// Duplicate labels: permanent of a[i][j] = cnt(pcs[i], dcs[j]).
		rows = rows[:0]
		viable := true
		for _, pc := range pcs {
			row := make([]int64, len(dcs))
			var rowSum int64
			for j, w := range dcs {
				row[j] = childCount(p, pc, w, c.t, maps)
				rowSum = satAdd(rowSum, row[j])
			}
			if rowSum == 0 {
				viable = false
				break
			}
			rows = append(rows, row)
		}
		if !viable {
			continue
		}
		if perm := permanent(rows); perm > 0 {
			out[v] = perm
		}
	}
	return out, nil
}

// childCount returns cnt(pc, w): 1 for a leaf pattern node with matching
// label, the DP value for internal nodes.
func childCount(p labeltree.Pattern, pc, w int32, t *labeltree.Tree, maps []map[int32]int64) int64 {
	if maps[pc] == nil {
		if p.Label(pc) == t.Label(w) {
			return 1
		}
		return 0
	}
	return maps[pc][w]
}

func hasDuplicateLabels(p labeltree.Pattern, nodes []int32) bool {
	if len(nodes) < 2 {
		return false
	}
	seen := make(map[labeltree.LabelID]bool, len(nodes))
	for _, n := range nodes {
		l := p.Label(n)
		if seen[l] {
			return true
		}
		seen[l] = true
	}
	return false
}

// permanent computes the number of systems of distinct representatives
// weighted by the matrix: sum over injective maps rows→columns of the
// product of selected entries. Rows are pattern children (≤ 20), columns
// data children (unbounded). Runs in O(cols · 2^rows).
func permanent(rows [][]int64) int64 {
	m := len(rows)
	if m == 0 {
		return 1
	}
	cols := len(rows[0])
	full := (1 << m) - 1
	f := make([]int64, full+1)
	f[0] = 1
	for j := 0; j < cols; j++ {
		// Descending subset order: writes only target numerically larger
		// sets, so f[S] is still the pre-column value when read.
		for s := full; s >= 0; s-- {
			if f[s] == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				if s&(1<<i) != 0 {
					continue
				}
				if a := rows[i][j]; a != 0 {
					t := s | 1<<i
					f[t] = satAdd(f[t], satMul(f[s], a))
				}
			}
		}
	}
	return f[full]
}

// CountAll counts every pattern concurrently and returns the counts in
// input order, using all available CPUs.
func (c *Counter) CountAll(patterns []labeltree.Pattern) []int64 {
	out, _ := c.CountAllContext(context.Background(), patterns, 0)
	return out
}

// CountAllContext is CountAll with an explicit worker count and
// cancellation: counting stops early (returning ctx.Err()) once ctx is
// done. workers <= 0 means GOMAXPROCS.
func (c *Counter) CountAllContext(ctx context.Context, patterns []labeltree.Pattern, workers int) ([]int64, error) {
	out := make([]int64, len(patterns))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(patterns) {
		workers = len(patterns)
	}
	if workers <= 1 {
		for i, p := range patterns {
			n, err := c.CountContext(ctx, p)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// A ctx error surfaces via the post-wait ctx.Err() check;
				// per-pattern counts just stop early.
				out[i], _ = c.CountContext(ctx, patterns[i])
			}
		}()
	}
dispatch:
	for i := range patterns {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func satAdd(a, b int64) int64 {
	s := a + b
	if s < a {
		return math.MaxInt64
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || p < 0 {
		return math.MaxInt64
	}
	return p
}
