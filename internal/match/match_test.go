package match

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

// figure1Tree builds the paper's Figure 1(a) document.
func figure1Tree(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	doc := `<computer><laptops><laptop><brand/><price/></laptop><laptop><brand/><price/></laptop></laptops><desktops/></computer>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func TestFigure1TwigQuery(t *testing.T) {
	tr, dict := figure1Tree(t)
	c := NewCounter(tr)
	// Figure 1(b): //laptop(brand, price) has two matches.
	q := labeltree.MustParsePattern("laptop(brand,price)", dict)
	if got := c.Count(q); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestSingleNodeCounts(t *testing.T) {
	tr, dict := figure1Tree(t)
	c := NewCounter(tr)
	for _, tc := range []struct {
		q    string
		want int64
	}{
		{"computer", 1}, {"laptop", 2}, {"brand", 2}, {"missing", 0},
	} {
		q := labeltree.MustParsePattern(tc.q, dict)
		if got := c.Count(q); got != tc.want {
			t.Errorf("Count(%s) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestPathCounts(t *testing.T) {
	tr, dict := figure1Tree(t)
	c := NewCounter(tr)
	for _, tc := range []struct {
		q    string
		want int64
	}{
		{"computer(laptops)", 1},
		{"laptops(laptop)", 2},
		{"laptops(laptop(brand))", 2},
		{"computer(laptops(laptop(price)))", 2},
		{"computer(desktops(laptop))", 0},
	} {
		q := labeltree.MustParsePattern(tc.q, dict)
		if got := c.Count(q); got != tc.want {
			t.Errorf("Count(%s) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestDuplicateSiblingLabels(t *testing.T) {
	tr, dict := figure1Tree(t)
	c := NewCounter(tr)
	// laptops(laptop, laptop): the two pattern children must map to the
	// two distinct laptop elements; 2 ordered injective assignments.
	q := labeltree.MustParsePattern("laptops(laptop,laptop)", dict)
	if got := c.Count(q); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	// Three distinct laptop children cannot be found among two elements.
	q3 := labeltree.MustParsePattern("laptops(laptop,laptop,laptop)", dict)
	if got := c.Count(q3); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
}

func TestDuplicateLabelsDeeper(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<r><a><x/></a><a><x/><x/></a><a/></r>`
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(tr)
	// r(a(x), a): first child can map to a1 (1 way via x) or a2 (2 ways),
	// second child to any *other* a. a1: 1 * 2 others = 2; a2: 2 * 2 = 4.
	q := labeltree.MustParsePattern("r(a(x),a)", dict)
	want := BruteCount(tr, q, 0)
	if got := c.Count(q); got != want {
		t.Fatalf("Count = %d, brute = %d", got, want)
	}
	if want != 6 {
		t.Fatalf("brute = %d, want 6 (hand computed)", want)
	}
}

func TestCountAgainstBruteRandom(t *testing.T) {
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(99))
	c := 0
	for trial := 0; trial < 300; trial++ {
		tr := treetest.RandomTree(rng, 2+rng.Intn(40), alphabet, dict)
		counter := NewCounter(tr)
		p := treetest.RandomPattern(rng, 1+rng.Intn(5), alphabet)
		want := BruteCount(tr, p, 0)
		if got := counter.Count(p); got != want {
			t.Fatalf("trial %d: DP=%d brute=%d pattern=%s", trial, got, want, p.String(dict))
		}
		if want > 0 {
			c++
		}
	}
	if c == 0 {
		t.Fatal("random workload never produced a positive count; test is vacuous")
	}
}

func TestQuickCountMatchesBrute(t *testing.T) {
	dict, alphabet := treetest.Alphabet(2) // tiny alphabet to force duplicates
	_ = dict
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := treetest.RandomTree(rng, 2+rng.Intn(25), alphabet, dict)
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		return NewCounter(tr).Count(p) == BruteCount(tr, p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountAll(t *testing.T) {
	tr, dict := figure1Tree(t)
	c := NewCounter(tr)
	patterns := []labeltree.Pattern{
		labeltree.MustParsePattern("laptop", dict),
		labeltree.MustParsePattern("laptop(brand,price)", dict),
		labeltree.MustParsePattern("missing", dict),
	}
	got := c.CountAll(patterns)
	want := []int64{2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CountAll[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPatternOccursOnceInItself(t *testing.T) {
	dict, alphabet := treetest.Alphabet(8) // distinct labels per node
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		// All-distinct labels: the pattern matches its own materialized
		// tree exactly once.
		size := 1 + rng.Intn(8)
		labels := make([]labeltree.LabelID, size)
		parent := make([]int32, size)
		parent[0] = -1
		for i := 0; i < size; i++ {
			labels[i] = alphabet[i]
			if i > 0 {
				parent[i] = int32(rng.Intn(i))
			}
		}
		p := labeltree.MustPattern(labels, parent)
		tr := treetest.TreeFromPattern(p, dict)
		if got := NewCounter(tr).Count(p); got != 1 {
			t.Fatalf("trial %d: Count = %d, want 1", trial, got)
		}
	}
}

func TestSaturationArithmetic(t *testing.T) {
	if satAdd(math.MaxInt64, 1) != math.MaxInt64 {
		t.Fatal("satAdd did not saturate")
	}
	if satMul(math.MaxInt64/2, 3) != math.MaxInt64 {
		t.Fatal("satMul did not saturate")
	}
	if satMul(0, math.MaxInt64) != 0 || satMul(7, 6) != 42 || satAdd(3, 4) != 7 {
		t.Fatal("saturating arithmetic broke exact small values")
	}
}

func TestPermanentSmall(t *testing.T) {
	// permanent of [[1,1],[1,1]] = 2 (two ways to pick distinct columns).
	if got := permanent([][]int64{{1, 1}, {1, 1}}); got != 2 {
		t.Fatalf("permanent = %d, want 2", got)
	}
	// 3 identical rows over 2 columns: no injective assignment.
	if got := permanent([][]int64{{1, 1}, {1, 1}, {1, 1}}); got != 0 {
		t.Fatalf("permanent = %d, want 0", got)
	}
	if got := permanent(nil); got != 1 {
		t.Fatalf("empty permanent = %d, want 1", got)
	}
	// Weighted: [[2,3],[5,7]] -> 2*7 + 3*5 = 29.
	if got := permanent([][]int64{{2, 3}, {5, 7}}); got != 29 {
		t.Fatalf("permanent = %d, want 29", got)
	}
}

func BenchmarkCountSmallPattern(b *testing.B) {
	dict, alphabet := treetest.Alphabet(10)
	rng := rand.New(rand.NewSource(1))
	tr := treetest.RandomTree(rng, 50000, alphabet, dict)
	c := NewCounter(tr)
	p := treetest.RandomPattern(rng, 4, alphabet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Count(p)
	}
}

func TestCounterTreeAccessor(t *testing.T) {
	tr, _ := figure1Tree(t)
	c := NewCounter(tr)
	if c.Tree() != tr {
		t.Fatal("Tree() returned a different tree")
	}
}

func TestMaxDuplicateChildrenGuard(t *testing.T) {
	// A pattern node with > MaxDuplicateChildren same-label children must
	// panic rather than hang in the exponential permanent DP.
	dict := labeltree.NewDict()
	x := dict.Intern("x")
	y := dict.Intern("y")
	n := MaxDuplicateChildren + 2
	labels := make([]labeltree.LabelID, n)
	parents := make([]int32, n)
	labels[0] = x
	parents[0] = -1
	for i := 1; i < n; i++ {
		labels[i] = y
		parents[i] = 0
	}
	p := labeltree.MustPattern(labels, parents)
	b := labeltree.NewBuilder(dict)
	root := b.AddRoot("x")
	for i := 0; i < n; i++ {
		b.AddChildID(root, y)
	}
	tr := b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized duplicate-children pattern accepted")
		}
	}()
	NewCounter(tr).Count(p)
}

func TestCountAllSingleWorker(t *testing.T) {
	tr, dict := figure1Tree(t)
	c := NewCounter(tr)
	got := c.CountAll([]labeltree.Pattern{labeltree.MustParsePattern("laptop", dict)})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("CountAll = %v", got)
	}
	if out := c.CountAll(nil); len(out) != 0 {
		t.Fatalf("CountAll(nil) = %v", out)
	}
}

func TestBruteCountLimit(t *testing.T) {
	tr, dict := figure1Tree(t)
	q := labeltree.MustParsePattern("laptop", dict)
	if got := BruteCount(tr, q, 1); got != 1 {
		t.Fatalf("limited brute = %d, want 1", got)
	}
}

func TestDeepChainPattern(t *testing.T) {
	// A 12-level chain stresses the DP's sparse propagation.
	var sb strings.Builder
	for i := 0; i < 12; i++ {
		sb.WriteString("<p>")
	}
	sb.WriteString("<q/>")
	for i := 0; i < 12; i++ {
		sb.WriteString("</p>")
	}
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(sb.String()), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := dict.Lookup("p")
	q, _ := dict.Lookup("q")
	chain := make([]labeltree.LabelID, 0, 13)
	for i := 0; i < 12; i++ {
		chain = append(chain, p)
	}
	chain = append(chain, q)
	pat := labeltree.PathPattern(chain...)
	if got := NewCounter(tr).Count(pat); got != 1 {
		t.Fatalf("deep chain count = %d, want 1", got)
	}
	// Suffix chains: p/p/q occurs once per depth offset.
	short := labeltree.PathPattern(p, p, q)
	if got := NewCounter(tr).Count(short); got != 1 {
		t.Fatalf("short chain count = %d, want 1", got)
	}
}
