package match

import (
	"context"
	"errors"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/xmlparse"
)

// wideTree builds a document with n laptop subtrees, enough that the
// counter's periodic context poll (every ctxCheckInterval data-node
// visits) fires at least once mid-scan.
func wideTree(t *testing.T, n int) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	var b strings.Builder
	b.WriteString("<computer><laptops>")
	for i := 0; i < n; i++ {
		b.WriteString("<laptop><brand/><price/></laptop>")
	}
	b.WriteString("</laptops></computer>")
	tr, err := xmlparse.Parse(strings.NewReader(b.String()), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

// TestCountContextCancellation is the match-layer cancellation table: a
// canceled or expired context stops the scan with the right sentinel,
// while a live context counts as usual.
func TestCountContextCancellation(t *testing.T) {
	// 2*ctxCheckInterval laptops guarantee the poll fires during the
	// per-data-node loop regardless of which anchor label is chosen.
	tr, dict := wideTree(t, 2*ctxCheckInterval)
	q := labeltree.MustParsePattern("laptop(brand,price)", dict)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithTimeout(context.Background(), -1)
	defer cancel2()

	for _, tc := range []struct {
		name    string
		ctx     context.Context
		wantErr error
	}{
		{"live", context.Background(), nil},
		{"canceled", canceled, context.Canceled},
		{"expired", expired, context.DeadlineExceeded},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := NewCounter(tr).CountContext(tc.ctx, q)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("CountContext err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantErr == nil && got != int64(2*ctxCheckInterval) {
				t.Fatalf("CountContext = %d, want %d", got, 2*ctxCheckInterval)
			}
		})
	}
}

// TestCountAllContextCancellation: the parallel batch surfaces the
// context error after its workers drain.
func TestCountAllContextCancellation(t *testing.T) {
	tr, dict := wideTree(t, 2*ctxCheckInterval)
	qs := []labeltree.Pattern{
		labeltree.MustParsePattern("laptop(brand,price)", dict),
		labeltree.MustParsePattern("laptops(laptop)", dict),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2} {
		if _, err := NewCounter(tr).CountAllContext(ctx, qs, workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
	}
}
