package treesketch

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/match"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

// figure11Doc builds the document of the paper's Figure 11 discussion
// (suitably concretized, as the paper itself abstracts it): a root with
// four b-elements, three of which have four c-children each and one of
// which has two.
func figure11Doc(t *testing.T) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 3; i++ {
		sb.WriteString("<b><c/><c/><c/><c/></b>")
	}
	sb.WriteString("<b><c/><c/></b>")
	sb.WriteString("</r>")
	return parseDoc(t, sb.String())
}

func TestExactWhenBudgetGenerous(t *testing.T) {
	// With an effectively unlimited budget the synopsis keeps the
	// count-stable partition and simple label/edge counts are exact.
	tr, dict := figure11Doc(t)
	syn := Build(tr, Options{BudgetBytes: 1 << 20})
	counter := match.NewCounter(tr)
	for _, qs := range []string{"b", "c", "r(b)", "b(c)", "r(b(c))"} {
		q := labeltree.MustParsePattern(qs, dict)
		want := float64(counter.Count(q))
		if got := syn.Estimate(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Estimate(%s) = %v, want %v", qs, got, want)
		}
	}
}

func TestAverageMultiplicationError(t *testing.T) {
	// Force the budget down so the two kinds of b-elements share one
	// cluster: the edge average 3.5 hides the variance and the branching
	// query b(c,c) is misestimated, while its true count is
	// 3·(4·3) + 1·(2·1) = 38. This is the Figure 11 error mechanism.
	tr, dict := figure11Doc(t)
	syn := Build(tr, Options{BudgetBytes: 90}) // a handful of nodes only
	if syn.Nodes() > 4 {
		t.Fatalf("budget did not force merging: %d nodes", syn.Nodes())
	}
	q := labeltree.MustParsePattern("b(c,c)", dict)
	truth := float64(match.NewCounter(tr).Count(q))
	if truth != 38 {
		t.Fatalf("true count = %v, want 38", truth)
	}
	got := syn.Estimate(q)
	// Average multiplication gives 4 · 3.5 · 3.5 = 49.
	if math.Abs(got-49) > 1e-9 {
		t.Fatalf("Estimate = %v, want 49 (average multiplication)", got)
	}
}

func TestZeroForAbsentStructure(t *testing.T) {
	tr, dict := figure11Doc(t)
	syn := Build(tr, Options{})
	for _, qs := range []string{"zzz", "c(b)", "r(c)"} {
		q := labeltree.MustParsePattern(qs, dict)
		if got := syn.Estimate(q); got != 0 {
			t.Errorf("Estimate(%s) = %v, want 0", qs, got)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	dict, alphabet := treetest.Alphabet(6)
	rng := rand.New(rand.NewSource(3))
	tr := treetest.RandomTree(rng, 3000, alphabet, dict)
	budget := 2000
	syn := Build(tr, Options{BudgetBytes: budget})
	if syn.SizeBytes() > budget {
		// One merge per label group per round may overshoot slightly on
		// the final round; allow a single node's worth of slack.
		if syn.SizeBytes() > budget+64 {
			t.Fatalf("SizeBytes = %d, budget %d", syn.SizeBytes(), budget)
		}
	}
	if syn.Nodes() < len(tr.DistinctLabels()) {
		t.Fatalf("fewer synopsis nodes (%d) than labels (%d)", syn.Nodes(), len(tr.DistinctLabels()))
	}
}

func TestElementCountsPreserved(t *testing.T) {
	// Whatever the clustering, per-label element totals must be exact.
	dict, alphabet := treetest.Alphabet(5)
	rng := rand.New(rand.NewSource(8))
	tr := treetest.RandomTree(rng, 800, alphabet, dict)
	syn := Build(tr, Options{BudgetBytes: 600})
	for _, l := range tr.DistinctLabels() {
		q := labeltree.SingleNode(l)
		want := float64(tr.LabelCount(l))
		if got := syn.Estimate(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("label %s: %v != %v", dict.Name(l), got, want)
		}
	}
}

func TestEdgeTotalsPreserved(t *testing.T) {
	// Parent-child label pair totals are also exact regardless of
	// clustering: sum over clusters of count × avg reproduces the total.
	dict, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(12))
	tr := treetest.RandomTree(rng, 500, alphabet, dict)
	syn := Build(tr, Options{BudgetBytes: 400})
	counter := match.NewCounter(tr)
	for _, a := range tr.DistinctLabels() {
		for _, b := range tr.DistinctLabels() {
			q := labeltree.PathPattern(a, b)
			want := float64(counter.Count(q))
			if got := syn.Estimate(q); math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("pair %s/%s: %v != %v", dict.Name(a), dict.Name(b), got, want)
			}
		}
	}
}

func TestRecursiveSchema(t *testing.T) {
	// Self-nesting labels (a inside a) must not wedge construction or
	// estimation.
	tr, dict := parseDoc(t, `<a><a><a><b/></a><b/></a><b/></a>`)
	syn := Build(tr, Options{})
	q := labeltree.MustParsePattern("a(a(b))", dict)
	want := float64(match.NewCounter(tr).Count(q))
	if got := syn.Estimate(q); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
}

func TestDeterministic(t *testing.T) {
	dict, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(21))
	tr := treetest.RandomTree(rng, 400, alphabet, dict)
	s1 := Build(tr, Options{BudgetBytes: 500})
	s2 := Build(tr, Options{BudgetBytes: 500})
	if s1.Nodes() != s2.Nodes() || s1.SizeBytes() != s2.SizeBytes() {
		t.Fatal("construction not deterministic")
	}
	q := treetest.RandomPattern(rng, 4, alphabet)
	if s1.Estimate(q) != s2.Estimate(q) {
		t.Fatal("estimation not deterministic")
	}
}

func TestStringSummary(t *testing.T) {
	tr, _ := figure11Doc(t)
	syn := Build(tr, Options{})
	if s := syn.String(); !strings.Contains(s, "nodes") {
		t.Fatalf("String = %q", s)
	}
}
