// Package treesketch implements the comparison baseline: a
// TreeSketches-style graph synopsis (Polyzotis, Garofalakis, Ioannidis,
// SIGMOD 2004) built from scratch. The paper evaluated against the
// authors' private executable; this reimplementation follows the published
// design closely enough to reproduce its behaviour:
//
//   - The synopsis is a directed graph. Each synopsis node covers a set of
//     data elements sharing a label and stores the element count; each
//     edge (u, v) carries the average number of v-children per u-element
//     (Section 5.3 and Figure 11 of the TreeLattice paper).
//   - Construction refines the label partition toward count stability
//     (a bisimulation-style refinement on child-cluster count signatures)
//     and then merges similar clusters bottom-up, one cheapest pair per
//     label group per round, until the synopsis fits the memory budget.
//     The repeated candidate scoring over a fine partition is what makes
//     construction expensive — the effect Table 3 of the paper reports.
//   - Estimation multiplies average child counts along the query tree.
//     With a coarse partition the per-element child-count variance hidden
//     behind each average compounds multiplicatively, the error mechanism
//     the paper dissects in its Figure 11 discussion.
package treesketch

import (
	"context"
	"fmt"
	"sort"

	"treelattice/internal/labeltree"
)

// Options configures synopsis construction.
type Options struct {
	// BudgetBytes is the target synopsis size. Default 50 KB, the
	// setting used throughout the paper's evaluation.
	BudgetBytes int
	// MaxRefineClusters stops count-stability refinement once the
	// partition grows beyond this many clusters (the previous round's
	// partition is kept). Default 20000.
	MaxRefineClusters int
	// MaxRefineRounds bounds refinement iterations. Default 16.
	MaxRefineRounds int
	// MaxMergeRounds bounds the merging loop; construction stops at the
	// budget or after this many rounds, whichever comes first. Default
	// 10000 (effectively unbounded).
	MaxMergeRounds int
}

func (o *Options) fill() {
	if o.BudgetBytes == 0 {
		o.BudgetBytes = 50 << 10
	}
	if o.MaxRefineClusters == 0 {
		o.MaxRefineClusters = 20000
	}
	if o.MaxRefineRounds == 0 {
		o.MaxRefineRounds = 16
	}
	if o.MaxMergeRounds == 0 {
		o.MaxMergeRounds = 10000
	}
}

// Synopsis is the built graph synopsis. It is immutable and safe for
// concurrent estimation.
type Synopsis struct {
	dict    *labeltree.Dict
	labels  []labeltree.LabelID // per synopsis node
	counts  []int64             // elements covered per synopsis node
	edges   [][]edge            // outgoing, sorted by target
	byLabel map[labeltree.LabelID][]int32
}

type edge struct {
	to  int32
	avg float64 // average children in `to` per element
}

// Build constructs a synopsis of t within the memory budget.
func Build(t *labeltree.Tree, opts Options) *Synopsis {
	opts.fill()
	cluster := refine(t, opts)
	cluster = mergeToBudget(t, cluster, opts)
	return assemble(t, cluster)
}

// refine starts from the label partition and refines by child-cluster
// count signatures until stable, a round bound, or a size cap.
func refine(t *labeltree.Tree, opts Options) []int32 {
	n := t.Size()
	cluster := make([]int32, n)
	ids := make(map[labeltree.LabelID]int32)
	for i := int32(0); int(i) < n; i++ {
		l := t.Label(i)
		id, ok := ids[l]
		if !ok {
			id = int32(len(ids))
			ids[l] = id
		}
		cluster[i] = id
	}
	numClusters := len(ids)
	for round := 0; round < opts.MaxRefineRounds; round++ {
		next := make([]int32, n)
		sig2id := make(map[string]int32)
		for i := int32(0); int(i) < n; i++ {
			sig := signature(t, cluster, i)
			id, ok := sig2id[sig]
			if !ok {
				id = int32(len(sig2id))
				sig2id[sig] = id
			}
			next[i] = id
		}
		if len(sig2id) > opts.MaxRefineClusters {
			return cluster // keep the coarser partition
		}
		if len(sig2id) == numClusters {
			return next // stable
		}
		numClusters = len(sig2id)
		cluster = next
	}
	return cluster
}

// signature renders (own cluster, sorted child-cluster counts) as a key.
func signature(t *labeltree.Tree, cluster []int32, i int32) string {
	counts := make(map[int32]int32)
	for _, c := range t.Children(i) {
		counts[cluster[c]]++
	}
	keys := make([]int32, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	buf := make([]byte, 0, 8+8*len(keys))
	buf = appendInt32(buf, cluster[i])
	for _, k := range keys {
		buf = appendInt32(buf, k)
		buf = appendInt32(buf, counts[k])
	}
	return string(buf)
}

func appendInt32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// clusterStats holds, per cluster, the element count and per-child-cluster
// first and second moments of child counts, from which merge costs and
// edge averages derive.
type clusterStats struct {
	n int64
	s map[int32]float64 // sum of child counts per child cluster
	q map[int32]float64 // sum of squared child counts per child cluster
}

// wss is the within-cluster sum of squares of the child-count vectors:
// the information lost by replacing per-element counts with the average.
func (c *clusterStats) wss() float64 {
	var total float64
	for d, s := range c.s {
		total += c.q[d] - s*s/float64(c.n)
	}
	return total
}

func computeStats(t *labeltree.Tree, cluster []int32) map[int32]*clusterStats {
	stats := make(map[int32]*clusterStats)
	counts := make(map[int32]float64) // scratch: child cluster -> count
	for i := int32(0); int(i) < t.Size(); i++ {
		c := cluster[i]
		st, ok := stats[c]
		if !ok {
			st = &clusterStats{s: make(map[int32]float64), q: make(map[int32]float64)}
			stats[c] = st
		}
		st.n++
		for k := range counts {
			delete(counts, k)
		}
		for _, ch := range t.Children(i) {
			counts[cluster[ch]]++
		}
		for d, k := range counts {
			st.s[d] += k
			st.q[d] += k * k
		}
	}
	return stats
}

// mergeToBudget greedily merges same-label cluster pairs — the single
// globally cheapest pair per iteration, as in the published bottom-up
// greedy — until the accounted synopsis size fits the budget. Stats are
// recomputed from the data after every merge so that merge effects on
// edges (including self-edges and incoming edges) are always accounted;
// this full rescoring is what makes TreeSketches construction expensive,
// the effect Table 3 of the paper reports.
func mergeToBudget(t *labeltree.Tree, cluster []int32, opts Options) []int32 {
	for round := 0; round < opts.MaxMergeRounds; round++ {
		stats := computeStats(t, cluster)
		if statsSizeBytes(stats) <= opts.BudgetBytes {
			return cluster
		}
		// Group clusters by label.
		groups := make(map[labeltree.LabelID][]int32)
		repLabel := make(map[int32]labeltree.LabelID)
		for i := int32(0); int(i) < t.Size(); i++ {
			if _, ok := repLabel[cluster[i]]; !ok {
				repLabel[cluster[i]] = t.Label(i)
			}
		}
		for c, l := range repLabel {
			groups[l] = append(groups[l], c)
		}
		wssCache := make(map[int32]float64, len(stats))
		for c, st := range stats {
			wssCache[c] = st.wss()
		}
		labels := make([]labeltree.LabelID, 0, len(groups))
		for l := range groups {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		bu, bv, bestCost := int32(-1), int32(-1), 0.0
		first := true
		for _, l := range labels {
			group := groups[l]
			if len(group) < 2 {
				continue
			}
			sort.Slice(group, func(a, b int) bool { return group[a] < group[b] })
			for ai := 0; ai < len(group); ai++ {
				for bi := ai + 1; bi < len(group); bi++ {
					u, v := group[ai], group[bi]
					cost := mergeCost(stats[u], stats[v]) - wssCache[u] - wssCache[v]
					if first || cost < bestCost {
						first, bestCost = false, cost
						bu, bv = u, v
					}
				}
			}
		}
		if bu < 0 {
			return cluster // nothing left to merge
		}
		for i, c := range cluster {
			if c == bv {
				cluster[i] = bu
			}
		}
	}
	return cluster
}

// mergeCost is the within-cluster sum of squares of the merged cluster
// u ∪ v; callers subtract the (cached) individual WSS values to get the
// increase. Allocation-free: it iterates the union of the edge keys.
func mergeCost(u, v *clusterStats) float64 {
	n := float64(u.n + v.n)
	var total float64
	for d, su := range u.s {
		s := su + v.s[d]
		total += u.q[d] + v.q[d] - s*s/n
	}
	for d, sv := range v.s {
		if _, shared := u.s[d]; shared {
			continue
		}
		total += v.q[d] - sv*sv/n
	}
	return total
}

// statsSizeBytes is the accounted size of a synopsis over these clusters:
// 12 bytes per node (label + count) and 12 per edge (target + average).
func statsSizeBytes(stats map[int32]*clusterStats) int {
	total := 0
	for _, st := range stats {
		total += 12 + 12*len(st.s)
	}
	return total
}

// assemble produces the immutable synopsis from a final clustering.
func assemble(t *labeltree.Tree, cluster []int32) *Synopsis {
	// Renumber clusters densely.
	dense := make(map[int32]int32)
	for _, c := range cluster {
		if _, ok := dense[c]; !ok {
			dense[c] = int32(len(dense))
		}
	}
	syn := &Synopsis{
		dict:    t.Dict(),
		labels:  make([]labeltree.LabelID, len(dense)),
		counts:  make([]int64, len(dense)),
		edges:   make([][]edge, len(dense)),
		byLabel: make(map[labeltree.LabelID][]int32),
	}
	sums := make([]map[int32]float64, len(dense))
	for i := int32(0); int(i) < t.Size(); i++ {
		c := dense[cluster[i]]
		syn.labels[c] = t.Label(i)
		syn.counts[c]++
		if sums[c] == nil {
			sums[c] = make(map[int32]float64)
		}
		for _, ch := range t.Children(i) {
			sums[c][dense[cluster[ch]]]++
		}
	}
	for c := range sums {
		targets := make([]int32, 0, len(sums[c]))
		for d := range sums[c] {
			targets = append(targets, d)
		}
		sort.Slice(targets, func(a, b int) bool { return targets[a] < targets[b] })
		for _, d := range targets {
			syn.edges[c] = append(syn.edges[c], edge{to: d, avg: sums[c][d] / float64(syn.counts[c])})
		}
	}
	for c, l := range syn.labels {
		syn.byLabel[l] = append(syn.byLabel[l], int32(c))
	}
	return syn
}

// Nodes reports the number of synopsis nodes.
func (s *Synopsis) Nodes() int { return len(s.labels) }

// SizeBytes is the accounted storage size: 12 bytes per node plus 12 per
// edge.
func (s *Synopsis) SizeBytes() int {
	total := 12 * len(s.labels)
	for _, es := range s.edges {
		total += 12 * len(es)
	}
	return total
}

// Name identifies the estimator in experiment output.
func (s *Synopsis) Name() string { return "treesketches" }

// Estimate returns the estimated number of matches of q: for every
// synopsis node with the root's label, the element count times the
// expected per-element match count of the query body, where each edge
// contributes its average child count multiplicatively.
func (s *Synopsis) Estimate(q labeltree.Pattern) float64 {
	children := make([][]int32, q.Size())
	for i := int32(1); int(i) < q.Size(); i++ {
		children[q.Parent(i)] = append(children[q.Parent(i)], i)
	}
	memo := make(map[[2]int32]float64)
	var perElement func(c, p int32) float64
	perElement = func(c, p int32) float64 {
		if s.labels[c] != q.Label(p) {
			return 0
		}
		if len(children[p]) == 0 {
			return 1
		}
		key := [2]int32{c, p}
		if v, ok := memo[key]; ok {
			return v
		}
		prod := 1.0
		for _, pc := range children[p] {
			var sum float64
			for _, e := range s.edges[c] {
				if s.labels[e.to] == q.Label(pc) {
					sum += e.avg * perElement(e.to, pc)
				}
			}
			if sum == 0 {
				prod = 0
				break
			}
			prod *= sum
		}
		memo[key] = prod
		return prod
	}
	var total float64
	for _, c := range s.byLabel[q.RootLabel()] {
		total += float64(s.counts[c]) * perElement(c, 0)
	}
	return total
}

// EstimateContext is Estimate gated on ctx. One synopsis walk is
// microseconds over a budget-bounded graph, so a single entry check is
// the whole cooperative contract; multi-document callers poll between
// documents.
func (s *Synopsis) EstimateContext(ctx context.Context, q labeltree.Pattern) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.Estimate(q), nil
}

// String summarizes the synopsis.
func (s *Synopsis) String() string {
	e := 0
	for _, es := range s.edges {
		e += len(es)
	}
	return fmt.Sprintf("treesketch synopsis: %d nodes, %d edges, %d bytes", len(s.labels), e, s.SizeBytes())
}
