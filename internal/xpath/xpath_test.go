package xpath

import (
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"
)

func compile(t *testing.T, expr string, dict *labeltree.Dict, opts Options) twigjoin.Query {
	t.Helper()
	q, err := Compile(expr, dict, opts)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return q
}

func TestCompileShapes(t *testing.T) {
	dict := labeltree.NewDict()
	cases := []struct {
		expr string
		want string // twigjoin.Query.String form
	}{
		{"//a", "//a"},
		{"/a", "/a"},
		{"//a/b", "//a(b)"},
		{"//a//b", "//a(//b)"},
		{"/a/b//c", "/a(b(//c))"},
		{"//a[b]", "//a(b)"},
		{"//a[b][c]", "//a(b,c)"},
		{"//a[b/c]/d", "//a(b(c),d)"},
		{"//a[.//c]", "//a(//c)"},
		{"//a[//c]", "//a(//c)"},
		{"//a[./b]", "//a(b)"},
		{"//a[@id]", "//a(@id)"},
		{"//a[b[c]]/d", "//a(b(c),d)"},
	}
	for _, tc := range cases {
		q := compile(t, tc.expr, dict, Options{})
		if got := q.String(dict); got != tc.want {
			t.Errorf("Compile(%q) = %s, want %s", tc.expr, got, tc.want)
		}
	}
}

func TestCompileValuePredicate(t *testing.T) {
	dict := labeltree.NewDict()
	q := compile(t, `//laptop[price = "42"]`, dict, Options{ValueBuckets: 64})
	want := "//laptop(price(" + xmlparse.ValueLabel("42", 64) + "))"
	if got := q.String(dict); got != want {
		t.Fatalf("value predicate = %s, want %s", got, want)
	}
	// Single quotes too.
	q2 := compile(t, `//laptop[price = '42']`, dict, Options{ValueBuckets: 64})
	if q2.String(dict) != want {
		t.Fatal("single-quoted literal differs")
	}
}

func TestCompileErrors(t *testing.T) {
	dict := labeltree.NewDict()
	for _, expr := range []string{
		"", "a", "//", "//a[", "//a[b", "//a]b", "//a[@]",
		`//a[b = "v"]`, // no buckets configured
		`//a[b = 42]`,  // unquoted literal
		`//a[b = "v]`,  // unterminated
		"//a/", "//a[b]/",
	} {
		if _, err := Compile(expr, dict, Options{}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestCompiledQueryExecutes(t *testing.T) {
	dict := labeltree.NewDict()
	doc := `<site><item id="1"><name>x</name><price>42</price></item><item><name>y</name><price>99</price></item></site>`
	tree, err := xmlparse.Parse(strings.NewReader(doc), dict,
		xmlparse.Options{Attributes: true, ValueBuckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	x := twigjoin.NewIndex(tree)
	for _, tc := range []struct {
		expr string
		want int64
	}{
		{"//item", 2},
		{"//item[name]", 2},
		{"//item[@id]", 1},
		{`//item[price = "42"]`, 1},
		{`//site//price`, 2},
		{`/site/item[name][price]`, 2},
		{`//item[zzz]`, 0},
	} {
		q := compile(t, tc.expr, dict, Options{ValueBuckets: 32})
		if got := twigjoin.Count(x, q); got != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("not-an-xpath", labeltree.NewDict(), Options{})
}
