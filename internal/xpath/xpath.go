// Package xpath compiles a practical XPath subset into twig queries, the
// front-end syntax users actually write. Supported:
//
//	/a/b          child steps, anchored at the document root
//	//a//b        descendant steps
//	a[b][.//c]    structural predicates (nested relative paths)
//	a[@id]        attribute predicates (documents parsed with Attributes)
//	a[b = "v"]    value predicates via bucket labels (documents parsed
//	              with ValueBuckets; pass the same bucket count here)
//
// The compiled twigjoin.Query matches per Definition 1 of the paper
// (embedding counts); use it with the estimators, the execution engine,
// or the planner.
package xpath

import (
	"fmt"
	"strings"

	"treelattice/internal/labeltree"
	"treelattice/internal/twigjoin"
	"treelattice/internal/xmlparse"
)

// Options configures compilation.
type Options struct {
	// ValueBuckets must match the bucket count the document was parsed
	// with for value predicates to line up; 0 rejects value predicates.
	ValueBuckets int
}

// Compile parses an XPath expression into a twig query.
func Compile(expr string, dict *labeltree.Dict, opts Options) (twigjoin.Query, error) {
	p := &parser{src: strings.TrimSpace(expr), dict: dict, opts: opts}
	if p.src == "" {
		return twigjoin.Query{}, fmt.Errorf("xpath: empty expression")
	}
	rootAxis := twigjoin.Descendant
	switch {
	case strings.HasPrefix(p.src, "//"):
		p.pos = 2
	case strings.HasPrefix(p.src, "/"):
		rootAxis = twigjoin.Child
		p.pos = 1
	default:
		return twigjoin.Query{}, fmt.Errorf("xpath: expression must start with / or //")
	}
	if _, err := p.parseSteps(-1, rootAxis); err != nil {
		return twigjoin.Query{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return twigjoin.Query{}, fmt.Errorf("xpath: trailing input %q", p.src[p.pos:])
	}
	pat, err := labeltree.NewPattern(p.labels, p.parents)
	if err != nil {
		return twigjoin.Query{}, err
	}
	return twigjoin.Query{Pattern: pat, Axes: p.axes}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(expr string, dict *labeltree.Dict, opts Options) twigjoin.Query {
	q, err := Compile(expr, dict, opts)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src     string
	pos     int
	dict    *labeltree.Dict
	opts    Options
	labels  []labeltree.LabelID
	parents []int32
	axes    []twigjoin.Axis
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// parseSteps parses Step (('/'|'//') Step)* under parent with the given
// axis for the first step, returning the last step's node index.
func (p *parser) parseSteps(parent int32, axis twigjoin.Axis) (int32, error) {
	node, err := p.parseStep(parent, axis)
	if err != nil {
		return -1, err
	}
	for {
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "//"):
			p.pos += 2
			node, err = p.parseStep(node, twigjoin.Descendant)
		case p.pos < len(p.src) && p.src[p.pos] == '/':
			p.pos++
			node, err = p.parseStep(node, twigjoin.Child)
		default:
			return node, nil
		}
		if err != nil {
			return -1, err
		}
	}
}

// parseStep parses Name Predicate* and returns the new node index.
func (p *parser) parseStep(parent int32, axis twigjoin.Axis) (int32, error) {
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return -1, err
	}
	idx := int32(len(p.labels))
	p.labels = append(p.labels, p.dict.Intern(name))
	p.parents = append(p.parents, parent)
	p.axes = append(p.axes, axis)
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '[' {
			return idx, nil
		}
		p.pos++
		if err := p.parsePredicate(idx); err != nil {
			return -1, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ']' {
			return -1, fmt.Errorf("xpath: unterminated predicate at offset %d", p.pos)
		}
		p.pos++
	}
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		p.pos++
	}
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start || (p.src[start] == '@' && p.pos == start+1) {
		return "", fmt.Errorf("xpath: expected name at offset %d in %q", start, p.src)
	}
	return p.src[start:p.pos], nil
}

// parsePredicate parses the contents of [...] under node owner: a
// relative path, optionally compared to a string literal.
func (p *parser) parsePredicate(owner int32) error {
	p.skipSpace()
	axis := twigjoin.Child
	switch {
	case strings.HasPrefix(p.src[p.pos:], ".//"):
		axis = twigjoin.Descendant
		p.pos += 3
	case strings.HasPrefix(p.src[p.pos:], "//"):
		axis = twigjoin.Descendant
		p.pos += 2
	case strings.HasPrefix(p.src[p.pos:], "./"):
		p.pos += 2
	}
	last, err := p.parseSteps(owner, axis)
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '=' {
		p.pos++
		p.skipSpace()
		lit, err := p.parseLiteral()
		if err != nil {
			return err
		}
		if p.opts.ValueBuckets <= 0 {
			return fmt.Errorf("xpath: value predicate needs Options.ValueBuckets")
		}
		bucket := xmlparse.ValueLabel(lit, p.opts.ValueBuckets)
		p.labels = append(p.labels, p.dict.Intern(bucket))
		p.parents = append(p.parents, last)
		p.axes = append(p.axes, twigjoin.Child)
	}
	return nil
}

func (p *parser) parseLiteral() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", fmt.Errorf("xpath: expected string literal at offset %d", p.pos)
	}
	quote := p.src[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("xpath: unterminated string literal")
	}
	lit := p.src[start:p.pos]
	p.pos++
	return lit, nil
}
