package pathtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/markov"
	"treelattice/internal/treetest"
	"treelattice/internal/xmlparse"
)

func parseDoc(t *testing.T, doc string) (*labeltree.Tree, *labeltree.Dict) {
	t.Helper()
	dict := labeltree.NewDict()
	tr, err := xmlparse.Parse(strings.NewReader(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dict
}

func ids(dict *labeltree.Dict, names ...string) []labeltree.LabelID {
	out := make([]labeltree.LabelID, len(names))
	for i, n := range names {
		id, ok := dict.Lookup(n)
		if !ok {
			id = -1
		}
		out[i] = id
	}
	return out
}

func TestBuildGroupsByLabelPath(t *testing.T) {
	// Two b-elements share one path-tree node; their c-children share one
	// child node with count 3.
	tr, dict := parseDoc(t, `<a><b><c/></b><b><c/><c/></b></a>`)
	pt := Build(tr, Options{})
	// Path tree: a(1) -> b(2) -> c(3): exactly 3 nodes.
	if pt.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3 (paths: %v)", pt.NodeCount(), pt.Paths())
	}
	paths := pt.Paths()
	want := map[string]int64{"a": 1, "a/b": 2, "a/b/c": 3}
	for _, p := range paths {
		key := strings.Join(p.Path, "/")
		if want[key] != p.Count {
			t.Fatalf("path %s count %d, want %d", key, p.Count, want[key])
		}
	}
	_ = dict
}

func TestExactOnFullTree(t *testing.T) {
	// An unpruned path tree answers path queries exactly — cross-check
	// against the Markov table's exact stored counts.
	dict, alphabet := treetest.Alphabet(3)
	rng := rand.New(rand.NewSource(3))
	tr := treetest.RandomTree(rng, 150, alphabet, dict)
	pt := Build(tr, Options{})
	tb := markov.Build(tr, 4)
	checked := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		path := make([]labeltree.LabelID, n)
		for i := range path {
			path[i] = alphabet[rng.Intn(len(alphabet))]
		}
		want := float64(tb.Count(path))
		got := pt.EstimatePath(path)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("path %v: pathtree=%v markov=%v", path, got, want)
		}
		if want > 0 {
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d positive paths", checked)
	}
}

func TestPruningCoalesces(t *testing.T) {
	// Many distinct low-count leaf labels under one parent get starred.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 26; i++ {
		sb.WriteString("<leaf" + string(rune('a'+i)) + "/>")
	}
	sb.WriteString("</r>")
	tr, dict := parseDoc(t, sb.String())
	full := Build(tr, Options{})
	pruned := Build(tr, Options{BudgetBytes: full.SizeBytes() / 3})
	if pruned.SizeBytes() > full.SizeBytes()/3+16 {
		t.Fatalf("pruned size %d exceeds budget", pruned.SizeBytes())
	}
	if pruned.NodeCount() >= full.NodeCount() {
		t.Fatal("pruning did not coalesce")
	}
	// The starred estimate for one coalesced leaf is the uniform share.
	got := pruned.EstimatePath(ids(dict, "r", "leafa"))
	if got <= 0 || got > 2 {
		t.Fatalf("starred estimate = %v, want ~1", got)
	}
	// Totals are preserved: summing over all leaves recovers 26.
	var total float64
	for i := 0; i < 26; i++ {
		total += pruned.EstimatePath(ids(dict, "r", "leaf"+string(rune('a'+i))))
	}
	if math.Abs(total-26) > 1e-6 {
		t.Fatalf("starred total = %v, want 26", total)
	}
}

func TestEstimateAnywhere(t *testing.T) {
	// Paths match at any depth, like the Markov estimators.
	tr, dict := parseDoc(t, `<a><x><b><c/></b></x><b><c/></b></a>`)
	pt := Build(tr, Options{})
	if got := pt.EstimatePath(ids(dict, "b", "c")); got != 2 {
		t.Fatalf("b/c = %v, want 2", got)
	}
}

func TestEstimateMisc(t *testing.T) {
	tr, dict := parseDoc(t, `<a><b/></a>`)
	pt := Build(tr, Options{})
	if got := pt.EstimatePath(nil); got != 0 {
		t.Fatalf("empty path = %v", got)
	}
	if got := pt.EstimatePath(ids(dict, "zzz")); got != 0 {
		t.Fatalf("absent label = %v", got)
	}
	if pt.Name() != "pathtree" {
		t.Fatal("name changed")
	}
	p := labeltree.MustParsePattern("a(b)", dict)
	if got := pt.EstimatePattern(p); got != 1 {
		t.Fatalf("EstimatePattern = %v", got)
	}
}
