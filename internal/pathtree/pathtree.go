// Package pathtree implements the path-tree summary of Aboulnaga et al.
// (VLDB 2001), cited by the paper as the structural alternative to Markov
// tables for XML path selectivity (and found inferior to them on real
// data — a comparison the extended benchmarks reproduce).
//
// A path tree is the label-path quotient of the document: one node per
// distinct root-to-node label path, annotated with the number of document
// nodes on that path. Under a memory budget, low-count sibling subtrees
// are coalesced into a "*" node that keeps only aggregate statistics —
// the paper's sibling-* pruning — and estimation through * nodes assumes
// uniformity.
package pathtree

import (
	"sort"

	"treelattice/internal/labeltree"
)

// StarLabel marks coalesced low-frequency siblings.
const StarLabel labeltree.LabelID = -2

// Options configures construction.
type Options struct {
	// BudgetBytes bounds the summary size; 0 keeps the full path tree.
	BudgetBytes int
}

// Tree is a built path tree. Immutable and safe for concurrent use.
type Tree struct {
	dict  *labeltree.Dict
	nodes []node
}

type node struct {
	label    labeltree.LabelID // StarLabel for coalesced nodes
	count    int64
	distinct int32 // distinct label paths folded into this node (1 unless star)
	parent   int32
	children []int32
}

// Build constructs the path tree of t, pruning to the budget if one is
// set.
func Build(t *labeltree.Tree, opts Options) *Tree {
	pt := &Tree{dict: t.Dict()}
	pt.nodes = append(pt.nodes, node{label: t.Label(0), count: 1, distinct: 1, parent: -1})
	// Map data nodes to path-tree nodes breadth-first.
	assign := make([]int32, t.Size())
	order := make([]int32, 0, t.Size())
	order = append(order, 0)
	for i := 0; i < len(order); i++ {
		v := order[i]
		ptn := assign[v]
		// Group v's children by label. Children of every data node on
		// the same label path share path-tree nodes, so the lookup map
		// must persist per path-tree node, not per data node.
		for _, c := range t.Children(v) {
			l := t.Label(c)
			child := pt.findChild(ptn, l)
			if child < 0 {
				child = pt.addChild(ptn, l)
			} else {
				pt.nodes[child].count++
			}
			assign[c] = child
			order = append(order, c)
		}
	}
	if opts.BudgetBytes > 0 {
		pt.pruneToBudget(opts.BudgetBytes)
	}
	return pt
}

// findChild returns parent's child with the given label, or -1.
func (pt *Tree) findChild(parent int32, label labeltree.LabelID) int32 {
	for _, c := range pt.nodes[parent].children {
		if pt.nodes[c].label == label {
			return c
		}
	}
	return -1
}

func (pt *Tree) addChild(parent int32, label labeltree.LabelID) int32 {
	id := int32(len(pt.nodes))
	pt.nodes = append(pt.nodes, node{label: label, count: 1, distinct: 1, parent: parent})
	pt.nodes[parent].children = append(pt.nodes[parent].children, id)
	return id
}

// NodeCount reports the number of live path-tree nodes. (Coalescing
// detaches nodes rather than compacting the arena, so liveness is
// counted by reachability from the root.)
func (pt *Tree) NodeCount() int {
	n := 0
	var walk func(i int32)
	walk = func(i int32) {
		n++
		for _, c := range pt.nodes[i].children {
			walk(c)
		}
	}
	walk(0)
	return n
}

// SizeBytes is the accounted size: 16 bytes per live node.
func (pt *Tree) SizeBytes() int { return 16 * pt.NodeCount() }

// Name identifies the estimator in experiment output.
func (pt *Tree) Name() string { return "pathtree" }

// pruneToBudget repeatedly coalesces the lowest-count leaf siblings into
// * nodes until the summary fits.
func (pt *Tree) pruneToBudget(budget int) {
	for pt.SizeBytes() > budget {
		// Find the parent whose children include the lowest-count leaf.
		best := int32(-1)
		var bestCount int64
		for i := range pt.nodes {
			n := &pt.nodes[i]
			if len(n.children) == 0 || n.label == StarLabel {
				continue
			}
			leaves := 0
			var minCount int64 = 1 << 62
			for _, c := range n.children {
				if len(pt.nodes[c].children) == 0 {
					leaves++
					if pt.nodes[c].count < minCount {
						minCount = pt.nodes[c].count
					}
				}
			}
			if leaves < 2 {
				continue
			}
			if best == -1 || minCount < bestCount {
				best = int32(i)
				bestCount = minCount
			}
		}
		if best == -1 {
			return // nothing coalescible
		}
		pt.coalesceLeaves(best)
	}
}

// coalesceLeaves folds all leaf children of parent into a single * node.
func (pt *Tree) coalesceLeaves(parent int32) {
	star := node{label: StarLabel, parent: parent}
	var kept []int32
	for _, c := range pt.nodes[parent].children {
		if len(pt.nodes[c].children) == 0 {
			star.count += pt.nodes[c].count
			star.distinct += pt.nodes[c].distinct
		} else {
			kept = append(kept, c)
		}
	}
	id := int32(len(pt.nodes))
	pt.nodes = append(pt.nodes, star)
	pt.nodes[parent].children = append(kept, id)
}

// EstimatePath estimates the selectivity of a downward label path
// (matched anywhere in the document, like the Markov estimators): the sum
// over all path-tree nodes of the count reached by walking the labels.
// Walks through a * node contribute its average count per folded path.
func (pt *Tree) EstimatePath(labels []labeltree.LabelID) float64 {
	if len(labels) == 0 {
		return 0
	}
	var total float64
	var visit func(i int32)
	visit = func(i int32) {
		total += pt.walk(i, labels)
		for _, c := range pt.nodes[i].children {
			visit(c)
		}
	}
	visit(0)
	return total
}

// walk returns the estimated nodes reached by following labels starting
// at path-tree node n (which must match labels[0]).
func (pt *Tree) walk(n int32, labels []labeltree.LabelID) float64 {
	nd := &pt.nodes[n]
	var here float64
	switch nd.label {
	case labels[0]:
		here = float64(nd.count)
	case StarLabel:
		// Uniformity assumption: the star's mass is spread over its
		// folded label paths.
		if nd.distinct > 0 {
			here = float64(nd.count) / float64(nd.distinct)
		}
	default:
		return 0
	}
	if here == 0 {
		return 0
	}
	if len(labels) == 1 {
		return here
	}
	// Fraction of this node's population continuing to each child is
	// child.count / node.count per occurrence.
	var out float64
	for _, c := range nd.children {
		sub := pt.walk(c, labels[1:])
		if sub > 0 {
			out += sub * (here / float64(nd.count))
		}
	}
	return out
}

// EstimatePattern estimates a path-shaped pattern; it panics on branching
// patterns (path trees summarize paths only).
func (pt *Tree) EstimatePattern(p labeltree.Pattern) float64 {
	return pt.EstimatePath(p.PathLabels())
}

// Paths returns the distinct root-to-node label paths with counts, in
// deterministic order — useful for inspection and tests.
func (pt *Tree) Paths() []PathCount {
	var out []PathCount
	var walk func(n int32, prefix []string)
	walk = func(n int32, prefix []string) {
		nd := &pt.nodes[n]
		name := "*"
		if nd.label != StarLabel {
			name = pt.dict.Name(nd.label)
		}
		prefix = append(prefix, name)
		out = append(out, PathCount{Path: append([]string(nil), prefix...), Count: nd.count})
		for _, c := range nd.children {
			walk(c, prefix)
		}
	}
	walk(0, nil)
	sort.Slice(out, func(a, b int) bool {
		pa, pb := out[a].Path, out[b].Path
		for i := 0; i < len(pa) && i < len(pb); i++ {
			if pa[i] != pb[i] {
				return pa[i] < pb[i]
			}
		}
		return len(pa) < len(pb)
	})
	return out
}

// PathCount is one root-to-node label path with its population.
type PathCount struct {
	Path  []string
	Count int64
}
