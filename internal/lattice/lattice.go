// Package lattice implements the paper's summary structure: occurrence
// counts of all basic twigs (subtree patterns) up to a size K, the
// "K-lattice" (Sections 3 and 4). Patterns are stored in a hash table
// keyed by canonical encoding — the paper found hash tables preferable to
// prefix trees for this purpose (Section 4.2) — and the store supports the
// δ-derivable pruning of Section 4.3 via Filter.
package lattice

import (
	"fmt"
	"sort"

	"treelattice/internal/labeltree"
)

// Entry is one stored pattern with its occurrence count (selectivity).
type Entry struct {
	Pattern labeltree.Pattern
	Count   int64
}

// Summary is a K-lattice: all occurred subtree patterns of size ≤ K with
// their counts (possibly filtered by pruning). The zero value is not ready
// to use; call New.
type Summary struct {
	k       int
	dict    *labeltree.Dict
	entries map[labeltree.Key]Entry
	pruned  bool // true once entries were removed by Filter
}

// New returns an empty K-lattice over dict.
func New(k int, dict *labeltree.Dict) *Summary {
	if k < 2 {
		panic(fmt.Sprintf("lattice: K must be >= 2, got %d", k))
	}
	return &Summary{k: k, dict: dict, entries: make(map[labeltree.Key]Entry)}
}

// K returns the lattice level: the maximum stored pattern size.
func (s *Summary) K() int { return s.k }

// Dict returns the label dictionary the summary is keyed against.
func (s *Summary) Dict() *labeltree.Dict { return s.dict }

// Pruned reports whether entries were removed by Filter, in which case a
// missing pattern may be derivable rather than absent from the data.
func (s *Summary) Pruned() bool { return s.pruned }

// MarkPruned declares the summary incomplete: estimators must treat missing
// patterns as potentially derivable instead of absent. The δ-derivable
// pruning algorithm marks its working summary this way while it decides
// which patterns to keep.
func (s *Summary) MarkPruned() { s.pruned = true }

// Add records pattern p with the given count, replacing any previous
// entry. Patterns larger than K are rejected.
func (s *Summary) Add(p labeltree.Pattern, count int64) error {
	return s.AddKeyed(p.Key(), p, count)
}

// AddKeyed is Add with the canonical key precomputed by the caller, for
// hot paths (the level-wise miner) that already derived the key for
// deduplication: key must equal p.Key(), which the summary trusts rather
// than re-encoding p.
func (s *Summary) AddKeyed(key labeltree.Key, p labeltree.Pattern, count int64) error {
	if p.Size() > s.k {
		return fmt.Errorf("lattice: pattern size %d exceeds K=%d", p.Size(), s.k)
	}
	if count < 0 {
		return fmt.Errorf("lattice: negative count %d", count)
	}
	s.entries[key] = Entry{Pattern: p, Count: count}
	return nil
}

// AddCount adds delta to the stored count for p, creating the entry if
// needed. This is the primitive behind incremental maintenance.
func (s *Summary) AddCount(p labeltree.Pattern, delta int64) error {
	return s.AddCountKeyed(p.Key(), p, delta)
}

// AddCountKeyed is AddCount with the canonical key precomputed by the
// caller (key must equal p.Key()). Merge uses it with the stored map
// keys, so shard reduction never re-encodes patterns.
func (s *Summary) AddCountKeyed(key labeltree.Key, p labeltree.Pattern, delta int64) error {
	if p.Size() > s.k {
		return fmt.Errorf("lattice: pattern size %d exceeds K=%d", p.Size(), s.k)
	}
	e, ok := s.entries[key]
	if !ok {
		e = Entry{Pattern: p}
	}
	e.Count += delta
	if e.Count < 0 {
		return fmt.Errorf("lattice: count for %s went negative", p.String(s.dict))
	}
	if e.Count == 0 {
		delete(s.entries, key)
		return nil
	}
	s.entries[key] = e
	return nil
}

// Count returns the stored count for p and whether p is present.
func (s *Summary) Count(p labeltree.Pattern) (int64, bool) {
	e, ok := s.entries[p.Key()]
	return e.Count, ok
}

// CountKey is Count for a precomputed canonical key.
func (s *Summary) CountKey(key labeltree.Key) (int64, bool) {
	e, ok := s.entries[key]
	return e.Count, ok
}

// Len reports the number of stored patterns.
func (s *Summary) Len() int { return len(s.entries) }

// LevelSizes returns the number of stored patterns per size, indexed by
// size (index 0 unused).
func (s *Summary) LevelSizes() []int {
	out := make([]int, s.k+1)
	for _, e := range s.entries {
		out[e.Pattern.Size()]++
	}
	return out
}

// Entries returns all entries of the given size in deterministic
// (canonical key) order. size 0 means all sizes.
func (s *Summary) Entries(size int) []Entry {
	type keyed struct {
		key labeltree.Key
		e   Entry
	}
	var all []keyed
	for k, e := range s.entries {
		if size == 0 || e.Pattern.Size() == size {
			all = append(all, keyed{k, e})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if sa, sb := all[a].e.Pattern.Size(), all[b].e.Pattern.Size(); sa != sb {
			return sa < sb
		}
		return all[a].key < all[b].key
	})
	out := make([]Entry, len(all))
	for i, k := range all {
		out[i] = k.e
	}
	return out
}

// Filter returns a copy of s keeping only entries for which keep returns
// true. The result is marked pruned if anything was dropped.
func (s *Summary) Filter(keep func(Entry) bool) *Summary {
	out := New(s.k, s.dict)
	out.pruned = s.pruned
	for k, e := range s.entries {
		if keep(e) {
			out.entries[k] = e
		} else {
			out.pruned = true
		}
	}
	return out
}

// Merge adds every count in other into s. Both summaries must share a
// dictionary and lattice level; used for incremental maintenance across
// document batches.
func (s *Summary) Merge(other *Summary) error {
	if other.k != s.k {
		return fmt.Errorf("lattice: merging K=%d into K=%d", other.k, s.k)
	}
	if other.dict != s.dict {
		return fmt.Errorf("lattice: merging summaries with different dictionaries")
	}
	for k, e := range other.entries {
		if err := s.AddCountKeyed(k, e.Pattern, e.Count); err != nil {
			return err
		}
	}
	return nil
}

// entryBytes is the accounted storage cost of an entry: 8 bytes of count
// plus 5 bytes per node (4-byte label, 1-byte parent index). This mirrors
// the compact serialized form and is what the paper-style "summary size
// (KB)" figures report.
func entryBytes(e Entry) int { return 8 + 5*e.Pattern.Size() }

// SizeBytes returns the accounted storage size of the summary.
func (s *Summary) SizeBytes() int {
	total := 0
	for _, e := range s.entries {
		total += entryBytes(e)
	}
	return total
}

// ResidentBytes estimates the bytes the map-backed summary actually
// keeps resident: key string, pattern slices, count, and Go map bucket
// overhead per entry. An estimate, not an exact heap measurement — its
// job is comparable residency accounting across the three backends.
func (s *Summary) ResidentBytes() int {
	total := 0
	for k, e := range s.entries {
		// key bytes + string header, labels (4B) + parents (4B) + three
		// slice/struct headers, count, and ~1/2 bucket of map overhead.
		total += len(k) + 16 + 8*e.Pattern.Size() + 48 + 8 + 16
	}
	return total
}
