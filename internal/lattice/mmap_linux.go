//go:build linux

package lattice

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only and shared, so every process serving the
// same snapshot file shares one page-cache copy and opening costs no
// heap. The returned release function unmaps; it must not run while the
// bytes are still referenced. Empty, oversized, or unmappable files
// (some filesystems refuse mmap) fall back to a plain read, signalled by
// a nil release function.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return readAllFile(f, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readAllFile(f, size)
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
