package lattice

import (
	"bytes"
	"errors"
	"testing"

	"treelattice/internal/labeltree"
)

// TestReadFrozenArenaGuard covers the 4GiB arena guard by lowering the
// limit: ReadFrozen must refuse to assemble an arena past it and report
// the typed sentinel, not a bare error.
func TestReadFrozenArenaGuard(t *testing.T) {
	d := labeltree.NewDict()
	s := New(3, d)
	for _, name := range []string{"aaa", "bbb", "ccc"} {
		if err := s.Add(labeltree.SingleNode(d.Intern(name)), 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	old := frozenArenaLimit
	frozenArenaLimit = 4 // three 2-byte keys: the second entry trips the guard
	defer func() { frozenArenaLimit = old }()
	if _, err := ReadFrozen(bytes.NewReader(data), labeltree.NewDict()); !errors.Is(err, ErrSnapshotTooLarge) {
		t.Fatalf("ReadFrozen past the arena limit: err = %v, want ErrSnapshotTooLarge", err)
	}

	frozenArenaLimit = old
	if _, err := ReadFrozen(bytes.NewReader(data), labeltree.NewDict()); err != nil {
		t.Fatalf("ReadFrozen under the real limit: %v", err)
	}
}
