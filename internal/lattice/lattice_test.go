package lattice

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

func twoLabels() (*labeltree.Dict, labeltree.LabelID, labeltree.LabelID) {
	d := labeltree.NewDict()
	return d, d.Intern("a"), d.Intern("b")
}

func TestAddAndCount(t *testing.T) {
	d, a, b := twoLabels()
	s := New(4, d)
	p := labeltree.PathPattern(a, b)
	if err := s.Add(p, 7); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Count(p); !ok || got != 7 {
		t.Fatalf("Count = %d,%v", got, ok)
	}
	// Isomorphic pattern hits the same entry.
	q := labeltree.MustPattern([]labeltree.LabelID{a, b}, []int32{-1, 0})
	if got, ok := s.Count(q); !ok || got != 7 {
		t.Fatalf("isomorphic Count = %d,%v", got, ok)
	}
	if _, ok := s.Count(labeltree.SingleNode(a)); ok {
		t.Fatal("absent pattern reported present")
	}
}

func TestAddRejectsOversizeAndNegative(t *testing.T) {
	d, a, b := twoLabels()
	s := New(2, d)
	big := labeltree.PathPattern(a, b, a)
	if err := s.Add(big, 1); err == nil {
		t.Fatal("oversize pattern accepted")
	}
	if err := s.Add(labeltree.SingleNode(a), -1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestNewPanicsOnTinyK(t *testing.T) {
	d, _, _ := twoLabels()
	defer func() {
		if recover() == nil {
			t.Fatal("K=1 accepted")
		}
	}()
	New(1, d)
}

func TestAddCountIncrementalAndDelete(t *testing.T) {
	d, a, _ := twoLabels()
	s := New(3, d)
	p := labeltree.SingleNode(a)
	if err := s.AddCount(p, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCount(p, 3); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Count(p); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if err := s.AddCount(p, -8); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Count(p); ok {
		t.Fatal("zero-count entry not removed")
	}
	if err := s.AddCount(p, -1); err == nil {
		t.Fatal("negative total accepted")
	}
}

// TestKeyedAddsMatchUnkeyed pins the keyed-add contract: AddKeyed and
// AddCountKeyed with key == p.Key() behave exactly like Add and AddCount.
func TestKeyedAddsMatchUnkeyed(t *testing.T) {
	d, a, b := twoLabels()
	p := labeltree.PathPattern(a, b)
	plain, keyed := New(4, d), New(4, d)
	if err := plain.Add(p, 5); err != nil {
		t.Fatal(err)
	}
	if err := keyed.AddKeyed(p.Key(), p, 5); err != nil {
		t.Fatal(err)
	}
	if err := plain.AddCount(p, 3); err != nil {
		t.Fatal(err)
	}
	if err := keyed.AddCountKeyed(p.Key(), p, 3); err != nil {
		t.Fatal(err)
	}
	cp, okP := plain.Count(p)
	ck, okK := keyed.Count(p)
	if !okP || !okK || cp != ck || cp != 8 {
		t.Fatalf("keyed adds diverge: plain %d/%v keyed %d/%v", cp, okP, ck, okK)
	}
	// Keyed variants enforce the same bounds as the unkeyed ones.
	big := labeltree.PathPattern(a, b, a, b, a)
	if err := keyed.AddKeyed(big.Key(), big, 1); err == nil {
		t.Fatal("oversize AddKeyed accepted")
	}
	if err := keyed.AddCountKeyed(big.Key(), big, 1); err == nil {
		t.Fatal("oversize AddCountKeyed accepted")
	}
	if err := keyed.AddKeyed(p.Key(), p, -1); err == nil {
		t.Fatal("negative AddKeyed accepted")
	}
	if err := keyed.AddCountKeyed(p.Key(), p, -9); err == nil {
		t.Fatal("negative total AddCountKeyed accepted")
	}
}

func TestLevelSizesAndEntries(t *testing.T) {
	d, a, b := twoLabels()
	s := New(3, d)
	s.Add(labeltree.SingleNode(a), 10)
	s.Add(labeltree.SingleNode(b), 20)
	s.Add(labeltree.PathPattern(a, b), 5)
	sizes := s.LevelSizes()
	if sizes[1] != 2 || sizes[2] != 1 || sizes[3] != 0 {
		t.Fatalf("LevelSizes = %v", sizes)
	}
	if got := s.Entries(1); len(got) != 2 {
		t.Fatalf("Entries(1) = %d entries", len(got))
	}
	all := s.Entries(0)
	if len(all) != 3 || all[0].Pattern.Size() != 1 || all[2].Pattern.Size() != 2 {
		t.Fatalf("Entries(0) not ordered by size: %v", all)
	}
}

func TestEntriesDeterministicOrder(t *testing.T) {
	d, alphabet := treetest.Alphabet(4)
	rng := rand.New(rand.NewSource(3))
	s := New(4, d)
	for i := 0; i < 50; i++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		s.Add(p, int64(i+1))
	}
	first := s.Entries(0)
	second := s.Entries(0)
	for i := range first {
		if first[i].Pattern.Key() != second[i].Pattern.Key() {
			t.Fatal("Entries order not deterministic")
		}
	}
}

func TestFilterMarksPruned(t *testing.T) {
	d, a, b := twoLabels()
	s := New(3, d)
	s.Add(labeltree.SingleNode(a), 10)
	s.Add(labeltree.PathPattern(a, b), 5)
	kept := s.Filter(func(e Entry) bool { return e.Pattern.Size() == 1 })
	if kept.Len() != 1 || !kept.Pruned() {
		t.Fatalf("Filter: len=%d pruned=%v", kept.Len(), kept.Pruned())
	}
	if s.Pruned() {
		t.Fatal("Filter mutated receiver")
	}
	same := s.Filter(func(Entry) bool { return true })
	if same.Pruned() {
		t.Fatal("no-op filter marked pruned")
	}
}

func TestMerge(t *testing.T) {
	d, a, b := twoLabels()
	s1 := New(3, d)
	s1.Add(labeltree.SingleNode(a), 10)
	s2 := New(3, d)
	s2.Add(labeltree.SingleNode(a), 4)
	s2.Add(labeltree.SingleNode(b), 6)
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s1.Count(labeltree.SingleNode(a)); got != 14 {
		t.Fatalf("merged count = %d, want 14", got)
	}
	if got, _ := s1.Count(labeltree.SingleNode(b)); got != 6 {
		t.Fatalf("merged count = %d, want 6", got)
	}
	other := New(4, d)
	if err := s1.Merge(other); err == nil {
		t.Fatal("merge with different K accepted")
	}
	d2 := labeltree.NewDict()
	if err := s1.Merge(New(3, d2)); err == nil {
		t.Fatal("merge with different dict accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	d, a, b := twoLabels()
	s := New(3, d)
	if s.SizeBytes() != 0 {
		t.Fatal("empty summary has nonzero size")
	}
	s.Add(labeltree.SingleNode(a), 1)     // 8 + 5
	s.Add(labeltree.PathPattern(a, b), 1) // 8 + 10
	if got := s.SizeBytes(); got != 31 {
		t.Fatalf("SizeBytes = %d, want 31", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d, alphabet := treetest.Alphabet(5)
	rng := rand.New(rand.NewSource(11))
	s := New(4, d)
	for i := 0; i < 80; i++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		s.Add(p, int64(rng.Intn(1000)+1))
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	// Load into a fresh dictionary: labels must remap by name.
	d2 := labeltree.NewDict()
	d2.Intern("unrelated") // shift IDs to exercise remapping
	got, err := Read(&buf, d2)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != s.K() || got.Len() != s.Len() || got.Pruned() != s.Pruned() {
		t.Fatalf("round trip header mismatch: K=%d len=%d", got.K(), got.Len())
	}
	for _, e := range s.Entries(0) {
		// Rebuild the pattern against d2 via its string form.
		q := labeltree.MustParsePattern(e.Pattern.String(d), d2)
		c, ok := got.Count(q)
		if !ok || c != e.Count {
			t.Fatalf("entry %s: got %d,%v want %d", e.Pattern.String(d), c, ok, e.Count)
		}
	}
}

func TestSerializePrunedFlag(t *testing.T) {
	d, a, b := twoLabels()
	s := New(3, d)
	s.Add(labeltree.SingleNode(a), 10)
	s.Add(labeltree.PathPattern(a, b), 5)
	pruned := s.Filter(func(e Entry) bool { return e.Pattern.Size() == 1 })
	var buf bytes.Buffer
	if _, err := pruned.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Pruned() {
		t.Fatal("pruned flag lost in round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	d, _, _ := twoLabels()
	for _, data := range [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("TLAT\x02"),     // bad version
		[]byte("TLAT\x01\x03"), // truncated after K
	} {
		if _, err := Read(bytes.NewReader(data), d); err == nil {
			t.Errorf("Read(%q) succeeded, want error", data)
		}
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errWrite
	}
	n := len(p)
	if n > f.after {
		n = f.after
	}
	f.after -= n
	if n < len(p) {
		return n, errWrite
	}
	return n, nil
}

var errWrite = errors.New("synthetic write failure")

func TestWriteToPropagatesErrors(t *testing.T) {
	d, a, b := twoLabels()
	s := New(3, d)
	s.Add(labeltree.SingleNode(a), 1)
	s.Add(labeltree.PathPattern(a, b), 2)
	for _, budget := range []int{0, 3, 10, 20} {
		if _, err := s.WriteTo(&failingWriter{after: budget}); err == nil {
			t.Fatalf("WriteTo with %d-byte writer succeeded", budget)
		}
	}
}
