package lattice

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sort"

	"treelattice/internal/labeltree"
)

// TLCZ v1 — the compressed snapshot format. Unlike TLAT (a stream that
// must be decoded entry by entry), TLCZ is the Compressed store's memory
// layout with a header in front: opening a snapshot is one checksum +
// structure verification pass over the bytes, after which lookups serve
// directly from the (possibly mmap'ed) file with no per-entry
// deserialization and no heap reconstruction.
//
//	header, 64 bytes fixed:
//	  0  magic "TLCZ"
//	  4  version u8
//	  5  flags u8 (bit 0: pruned)
//	  6  blockLen u16 LE
//	  8  K u32 LE
//	  12 entry count u32 LE
//	  16 label count u32 LE
//	  20 crc32c of everything past the header, u32 LE
//	  24 accounted SizeBytes u64 LE
//	  32 4 × section descriptor (offset u32 LE, length u32 LE):
//	     labels, fences, block offsets, block data
//	sections, each starting at an 8-byte-aligned file offset:
//	  labels: label count × (uvarint length, name bytes) in file-local ID order
//	  fences: per block, first key's first 8 bytes, big-endian zero-padded u64
//	  block offsets: per block, start offset into block data, u32 LE
//	  block data: front-coded runs of (header, suffix bytes, uvarint
//	    count); the header is one byte packing (lcp<<4 | suffix length)
//	    when both values are below 15, or the escape byte 0xFF followed
//	    by uvarint lcp and uvarint suffix length. Each block's first
//	    entry has lcp 0
//
// Fixed-width fields are read through encoding/binary on byte views, so
// the layout is alignment-safe however the file lands in memory. Keys in
// the file are canonical encodings under dense file-local label IDs
// (0..labelCount-1 in first-use order); when interning the label table
// into the destination dictionary reproduces exactly those IDs — always
// the case for a fresh dictionary, the serving path — key bytes are used
// zero-copy. Otherwise the entries are rebound: decoded, relabeled, and
// rebuilt in memory with identical counts.
const (
	compMagic     = "TLCZ"
	compVersion   = 1
	compHeaderLen = 64
	compFlagPrune = 1
)

// CompressedMagic and SummaryMagic are the 4-byte file signatures of the
// two snapshot formats, exported so callers can sniff which loader a file
// needs without depending on layout details.
const (
	CompressedMagic = compMagic
	SummaryMagic    = magic
)

var compCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteCompressed serializes the summary in TLCZ form. Like WriteTo, the
// output embeds a label-name table so it can be loaded against any
// dictionary, and equal summaries serialize to identical bytes.
func WriteCompressed(w io.Writer, s *Summary) (int64, error) {
	entries := s.Entries(0)
	// File-local label IDs in first-use order over the canonical entry
	// ordering — the same scheme WriteTo uses.
	used := make(map[labeltree.LabelID]labeltree.LabelID)
	seen := make(map[labeltree.LabelID]bool)
	var names []string
	for _, e := range entries {
		for i := int32(0); int(i) < e.Pattern.Size(); i++ {
			l := e.Pattern.Label(i)
			if !seen[l] {
				seen[l] = true
				used[l] = labeltree.LabelID(len(names))
				names = append(names, s.dict.Name(l))
			}
		}
	}
	// Re-encode every pattern under the file-local IDs. Canonical child
	// order depends on the IDs, so keys are rebuilt and re-sorted.
	type kc struct {
		key   string
		count int64
	}
	kcs := make([]kc, len(entries))
	sizeBytes := 0
	for i, e := range entries {
		n := e.Pattern.Size()
		labels := make([]labeltree.LabelID, n)
		parents := make([]int32, n)
		parents[0] = -1
		for j := int32(0); int(j) < n; j++ {
			labels[j] = used[e.Pattern.Label(j)]
			if j > 0 {
				parents[j] = e.Pattern.Parent(j)
			}
		}
		p, err := labeltree.NewPattern(labels, parents)
		if err != nil {
			return 0, fmt.Errorf("lattice: relabeling entry %d: %w", i, err)
		}
		kcs[i] = kc{key: string(p.Key()), count: e.Count}
		sizeBytes += 8 + 5*n
	}
	sort.Slice(kcs, func(a, b int) bool { return kcs[a].key < kcs[b].key })
	keys := make([]string, len(kcs))
	counts := make([]int64, len(kcs))
	for i, e := range kcs {
		keys[i] = e.key
		counts[i] = e.count
	}
	c := buildCompressed(keys, counts, compressedBlockLen)

	var lab []byte
	var vbuf [binary.MaxVarintLen64]byte
	for _, n := range names {
		lab = append(lab, vbuf[:binary.PutUvarint(vbuf[:], uint64(len(n)))]...)
		lab = append(lab, n...)
	}

	fenceBytes := make([]byte, 0, 8*len(c.fences))
	for _, f := range c.fences {
		fenceBytes = binary.BigEndian.AppendUint64(fenceBytes, f)
	}
	offBytes := make([]byte, 0, 4*len(c.fences))
	for _, o := range c.offs[:len(c.fences)] { // drop the in-memory sentinel
		offBytes = binary.LittleEndian.AppendUint32(offBytes, o)
	}

	var payload []byte
	var secs [4][2]uint32 // offset, length
	addSection := func(i int, b []byte) {
		for (compHeaderLen+len(payload))%8 != 0 {
			payload = append(payload, 0)
		}
		secs[i] = [2]uint32{uint32(compHeaderLen + len(payload)), uint32(len(b))}
		payload = append(payload, b...)
	}
	addSection(0, lab)
	addSection(1, fenceBytes)
	addSection(2, offBytes)
	addSection(3, c.blocks)
	if int64(compHeaderLen)+int64(len(payload)) > int64(^uint32(0)) {
		return 0, fmt.Errorf("lattice: writing compressed snapshot: %w", ErrSnapshotTooLarge)
	}

	head := make([]byte, compHeaderLen)
	copy(head, compMagic)
	head[4] = compVersion
	if s.pruned {
		head[5] = compFlagPrune
	}
	binary.LittleEndian.PutUint16(head[6:], compressedBlockLen)
	binary.LittleEndian.PutUint32(head[8:], uint32(s.k))
	binary.LittleEndian.PutUint32(head[12:], uint32(len(keys)))
	binary.LittleEndian.PutUint32(head[16:], uint32(len(names)))
	binary.LittleEndian.PutUint32(head[20:], crc32.Checksum(payload, compCRC))
	binary.LittleEndian.PutUint64(head[24:], uint64(sizeBytes))
	for i, sec := range secs {
		binary.LittleEndian.PutUint32(head[32+8*i:], sec[0])
		binary.LittleEndian.PutUint32(head[36+8*i:], sec[1])
	}

	n1, err := w.Write(head)
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(payload)
	return int64(n1) + int64(n2), err
}

// OpenCompressed opens a TLCZ snapshot held in data, interning its label
// table into dict. On the fast path (fresh dictionary) the returned
// store serves lookups directly out of data with zero copies, so the
// caller must not mutate data afterwards; when dict already holds labels
// under different IDs the entries are rebound onto the dictionary in
// memory instead — identical counts, no retained reference to data.
// Every open verifies the checksum and the structural invariants the
// allocation-free lookup path assumes.
func OpenCompressed(data []byte, dict *labeltree.Dict) (*Compressed, error) {
	if len(data) < compHeaderLen {
		return nil, fmt.Errorf("lattice: compressed snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != compMagic {
		return nil, fmt.Errorf("lattice: bad compressed magic %q", data[:4])
	}
	if data[4] != compVersion {
		return nil, fmt.Errorf("lattice: unsupported compressed version %d", data[4])
	}
	flags := data[5]
	if flags&^byte(compFlagPrune) != 0 {
		return nil, fmt.Errorf("lattice: unsupported compressed flags %#x", flags)
	}
	blockLen := int(binary.LittleEndian.Uint16(data[6:]))
	k := int(binary.LittleEndian.Uint32(data[8:]))
	n := int(binary.LittleEndian.Uint32(data[12:]))
	nLabels := int(binary.LittleEndian.Uint32(data[16:]))
	wantCRC := binary.LittleEndian.Uint32(data[20:])
	sizeBytes := binary.LittleEndian.Uint64(data[24:])
	if blockLen < 1 || blockLen > 1<<12 {
		return nil, fmt.Errorf("lattice: implausible compressed block length %d", blockLen)
	}
	if k < 2 || k > 1<<20 {
		return nil, fmt.Errorf("lattice: implausible K=%d", k)
	}
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("lattice: implausible label count %d", nLabels)
	}
	if sizeBytes > uint64(n)*uint64(8+5*k) {
		return nil, fmt.Errorf("lattice: implausible accounted size %d for %d entries", sizeBytes, n)
	}
	if crc32.Checksum(data[compHeaderLen:], compCRC) != wantCRC {
		return nil, fmt.Errorf("lattice: compressed snapshot checksum mismatch")
	}
	sec := func(i int) ([]byte, error) {
		off := binary.LittleEndian.Uint32(data[32+8*i:])
		ln := binary.LittleEndian.Uint32(data[36+8*i:])
		if off%8 != 0 || off < compHeaderLen || uint64(off)+uint64(ln) > uint64(len(data)) {
			return nil, fmt.Errorf("lattice: compressed section %d out of bounds", i)
		}
		return data[off : off+ln : off+ln], nil
	}
	lab, err := sec(0)
	if err != nil {
		return nil, err
	}
	fenceBytes, err := sec(1)
	if err != nil {
		return nil, err
	}
	offBytes, err := sec(2)
	if err != nil {
		return nil, err
	}
	blocks, err := sec(3)
	if err != nil {
		return nil, err
	}
	nb := 0
	if n > 0 {
		nb = (n + blockLen - 1) / blockLen
	}
	if len(fenceBytes) != nb*8 || len(offBytes) != nb*4 {
		return nil, fmt.Errorf("lattice: compressed index sections sized for %d/%d blocks, expected %d",
			len(fenceBytes)/8, len(offBytes)/4, nb)
	}
	// The fence words and block offsets are decoded off their byte
	// sections up front: the block search touches them on every lookup,
	// and native slices are endian-portable and cost one bounds check
	// per probe (the offsets additionally gain the sentinel that lets
	// blockData slice without a last-block special case). A few words
	// per block is a negligible copy next to the mapped file.
	fences := make([]uint64, nb)
	for i := range fences {
		fences[i] = binary.BigEndian.Uint64(fenceBytes[i*8:])
	}
	var offs []uint32
	if nb > 0 {
		offs = make([]uint32, nb+1)
		for i := 0; i < nb; i++ {
			offs[i] = binary.LittleEndian.Uint32(offBytes[i*4:])
		}
		offs[nb] = uint32(len(blocks))
	}

	ids := make([]labeltree.LabelID, nLabels)
	identity := true
	p := 0
	for i := range ids {
		l, un := binary.Uvarint(lab[p:])
		if un <= 0 || l > 1<<20 || int(l) > len(lab)-p-un {
			return nil, fmt.Errorf("lattice: compressed label %d malformed", i)
		}
		p += un
		ids[i] = dict.Intern(string(lab[p : p+int(l)]))
		if ids[i] != labeltree.LabelID(i) {
			identity = false
		}
		p += int(l)
	}
	if p != len(lab) {
		return nil, fmt.Errorf("lattice: compressed label table has %d trailing bytes", len(lab)-p)
	}

	// One verification pass: structure + key order (walkBlocks) and the
	// fence index the binary search trusts.
	var keyBuf []byte
	i := 0
	err = walkBlocks(blocks, offs[:nb], blockLen, n, &keyBuf, func(key []byte, _ uint64) error {
		if i%blockLen == 0 {
			if fences[i/blockLen] != prefix8(key) {
				return fmt.Errorf("lattice: compressed fence %d does not match its block", i/blockLen)
			}
		}
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}

	c := &Compressed{
		k: k, dict: dict, pruned: flags&compFlagPrune != 0, n: n,
		blockLen: blockLen, fences: fences, jump: buildJump(fences),
		offs: offs, blocks: blocks,
		sizeBytes: int(sizeBytes), backing: data,
	}
	if identity {
		return c, nil
	}
	return rebindCompressed(c, ids)
}

// rebindCompressed rebuilds a snapshot whose file-local label IDs do not
// coincide with the destination dictionary's: every entry is decoded,
// relabeled through ids, re-encoded (canonical order depends on the
// IDs), and the store reassembled in memory. Counts are untouched, so
// estimates over the rebound store stay bit-identical; only the
// zero-copy property is lost. Distinct file keys can collapse after
// relabeling only when the label table carries duplicate names — then
// the later entry wins, matching Summary.Add and ReadFrozen semantics.
func rebindCompressed(c *Compressed, ids []labeltree.LabelID) (*Compressed, error) {
	type kc struct {
		key   string
		count int64
		size  int
		ord   int
	}
	kcs := make([]kc, 0, c.n)
	var keyBuf []byte
	err := walkBlocks(c.blocks, c.offs[:c.nBlocks()], c.blockLen, c.n, &keyBuf, func(key []byte, cnt uint64) error {
		ord := len(kcs)
		fp, err := labeltree.DecodeKey(labeltree.Key(key))
		if err != nil {
			return fmt.Errorf("lattice: compressed entry %d: %w", ord, err)
		}
		n := fp.Size()
		if n > c.k {
			return fmt.Errorf("lattice: compressed entry %d has size %d > K=%d", ord, n, c.k)
		}
		labels := make([]labeltree.LabelID, n)
		parents := make([]int32, n)
		parents[0] = -1
		for i := int32(0); int(i) < n; i++ {
			fl := fp.Label(i)
			if fl < 0 || int(fl) >= len(ids) {
				return fmt.Errorf("lattice: compressed entry %d references label %d of %d", ord, fl, len(ids))
			}
			labels[i] = ids[fl]
			if i > 0 {
				parents[i] = fp.Parent(i)
			}
		}
		p, err := labeltree.NewPattern(labels, parents)
		if err != nil {
			return fmt.Errorf("lattice: compressed entry %d: %w", ord, err)
		}
		kcs = append(kcs, kc{key: string(p.Key()), count: int64(cnt), size: n, ord: ord})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(kcs, func(a, b int) bool {
		if kcs[a].key != kcs[b].key {
			return kcs[a].key < kcs[b].key
		}
		return kcs[a].ord < kcs[b].ord
	})
	keys := make([]string, 0, len(kcs))
	counts := make([]int64, 0, len(kcs))
	sizeBytes := 0
	for i, e := range kcs {
		if i+1 < len(kcs) && kcs[i+1].key == e.key {
			continue // duplicate after relabeling: last write wins
		}
		keys = append(keys, e.key)
		counts = append(counts, e.count)
		sizeBytes += 8 + 5*e.size
	}
	r := buildCompressed(keys, counts, c.blockLen)
	r.k, r.dict, r.pruned, r.sizeBytes = c.k, c.dict, c.pruned, sizeBytes
	return r, nil
}

// ReadCompressed reads a TLCZ snapshot from r into memory and opens it.
func ReadCompressed(r io.Reader, dict *labeltree.Dict) (*Compressed, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("lattice: reading compressed snapshot: %w", err)
	}
	return OpenCompressed(data, dict)
}

// OpenCompressedFile opens a TLCZ snapshot by memory-mapping it where
// the platform supports that (falling back to a plain read), so replicas
// opening the same snapshot share page cache and pay no heap copy. The
// mapping is released when the store becomes unreachable — fleet
// eviction can simply drop the reference while estimates against the
// store are still in flight — or eagerly via Close when the caller can
// guarantee no concurrent readers.
func OpenCompressedFile(path string, dict *labeltree.Dict) (*Compressed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, unmap, err := mmapFile(f)
	if err != nil {
		return nil, err
	}
	c, err := OpenCompressed(data, dict)
	if err != nil || c.backing == nil || unmap == nil {
		// Open failed, or rebinding copied the entries onto the heap:
		// either way the mapping is no longer referenced.
		if unmap != nil {
			unmap()
		}
		return c, err
	}
	c.unmap = unmap
	runtime.SetFinalizer(c, func(cc *Compressed) {
		if cc.unmap != nil {
			cc.unmap()
		}
	})
	return c, nil
}

// Close eagerly releases an mmap'ed backing and turns the store empty
// (subsequent lookups miss rather than fault). It must not be called
// while other goroutines may still read the store; long-lived serving
// paths should instead drop the reference and let the runtime unmap it.
// Heap-backed stores need no Close; on them it is a no-op.
func (c *Compressed) Close() error {
	u := c.unmap
	if u == nil {
		return nil
	}
	c.unmap = nil
	runtime.SetFinalizer(c, nil)
	c.n = 0
	c.fences, c.jump, c.offs, c.blocks, c.backing = nil, nil, nil, nil, nil
	return u()
}

// readAllFile is the portable mmap fallback: the whole snapshot read
// onto the heap.
func readAllFile(f *os.File, size int64) ([]byte, func() error, error) {
	var buf bytes.Buffer
	if size > 0 && size == int64(int(size)) {
		buf.Grow(int(size))
	}
	if _, err := buf.ReadFrom(f); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), nil, nil
}
