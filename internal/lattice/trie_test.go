package lattice

import (
	"math/rand"
	"testing"

	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

func TestTrieStoreBasics(t *testing.T) {
	tr := NewTrieStore()
	if _, ok := tr.Get("missing"); ok {
		t.Fatal("empty trie reported a hit")
	}
	tr.Put("abc", 7)
	tr.Put("abd", 8)
	tr.Put("ab", 9) // prefix of an existing key
	if got, ok := tr.Get("abc"); !ok || got != 7 {
		t.Fatalf("Get(abc) = %d,%v", got, ok)
	}
	if got, ok := tr.Get("ab"); !ok || got != 9 {
		t.Fatalf("Get(ab) = %d,%v", got, ok)
	}
	if _, ok := tr.Get("a"); ok {
		t.Fatal("interior node reported present")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	tr.Put("abc", 70) // overwrite
	if got, _ := tr.Get("abc"); got != 70 || tr.Len() != 3 {
		t.Fatalf("overwrite failed: %d len=%d", got, tr.Len())
	}
}

func TestTrieStoreMatchesSummary(t *testing.T) {
	d, alphabet := treetest.Alphabet(4)
	_ = d
	rng := rand.New(rand.NewSource(19))
	s := New(4, d)
	var patterns []labeltree.Pattern
	for i := 0; i < 100; i++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		s.Add(p, int64(i+1))
		patterns = append(patterns, p)
	}
	tr := FromSummary(s)
	if tr.Len() != s.Len() {
		t.Fatalf("trie has %d keys, summary %d", tr.Len(), s.Len())
	}
	for _, p := range patterns {
		want, _ := s.Count(p)
		got, ok := tr.Get(p.Key())
		if !ok || got != want {
			t.Fatalf("trie disagrees on %v: %d vs %d", p.Key(), got, want)
		}
	}
}
