package lattice

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"treelattice/internal/labeltree"
)

// Compressed is an immutable, succinct snapshot of a K-lattice: the
// second read-only backend next to Frozen, trading a bounded amount of
// lookup work for a several-fold smaller resident footprint. Canonical
// keys are stored sorted and front-coded (each key records only the
// bytes after its longest common prefix with its predecessor) in blocks
// of compressedBlockLen entries; entry headers pack lcp and suffix
// length into one byte in the common case; counts are inline uvarints;
// a small per-block fence index (first key of every block) plus a
// 257-slot first-byte jump table lets CountKey do a short binary search
// and a bounded in-block scan. There is no per-entry offset array and
// no hash table — the structures that dominate Frozen's resident size.
//
// A Compressed is built from a populated *Summary (Compress), from the
// TLCZ snapshot format (OpenCompressed / ReadCompressed), or straight
// from an mmap'ed snapshot file (OpenCompressedFile). It is safe for
// concurrent use by any number of readers.
type Compressed struct {
	k      int
	dict   *labeltree.Dict
	pruned bool
	n      int // number of entries

	blockLen int      // entries per block (last block may hold fewer)
	fences   []uint64 // per block: first 8 key bytes of the block's first key, big-endian packed
	jump     []uint16 // 257 slots: first block whose fence's top byte is ≥ the slot index; nil when it would not pay
	offs     []uint32 // nBlocks+1: block start offsets into blocks, closed by a len(blocks) sentinel (empty when no entries)
	blocks   []byte   // front-coded entry data

	sizeBytes int // accounted storage, matching Summary.SizeBytes

	// backing is the whole snapshot the block data is a view into when
	// the store was opened zero-copy from a file or byte slice (fences,
	// jump, and offs are decoded to native words either way); nil for
	// heap-assembled stores. unmap releases an mmap'ed backing.
	backing []byte
	unmap   func() error
}

// compressedBlockLen is the front-coding restart interval. 8 bounds the
// lookup scan to a handful of entries while keeping the fence/offset
// overhead near a byte and a half per entry; lower it and lookups speed
// up but fences grow.
const compressedBlockLen = 8

// K returns the lattice level: the maximum stored pattern size.
func (c *Compressed) K() int { return c.k }

// Dict returns the label dictionary the snapshot is keyed against.
func (c *Compressed) Dict() *labeltree.Dict { return c.dict }

// Pruned reports whether the summary this snapshot was taken from had
// entries removed by Filter.
func (c *Compressed) Pruned() bool { return c.pruned }

// Len reports the number of stored patterns.
func (c *Compressed) Len() int { return c.n }

// SizeBytes returns the accounted storage size (8 bytes of count plus 5
// bytes per node — the same accounting as Summary and Frozen, so the
// three backends stay interchangeable in size-sensitive callers).
func (c *Compressed) SizeBytes() int { return c.sizeBytes }

// ResidentBytes reports the actual bytes this snapshot keeps resident:
// the whole backing file for zero-copy opens (every section is a view
// into it) plus the decoded fence words and jump table, or the
// assembled sections for heap-backed stores. This is the number
// byte-budget residency accounting should charge.
func (c *Compressed) ResidentBytes() int {
	if c.backing != nil {
		return len(c.backing) + 8*len(c.fences) + 2*len(c.jump) + 4*len(c.offs)
	}
	return 8*len(c.fences) + 2*len(c.jump) + 4*len(c.offs) + len(c.blocks)
}

// Count returns the stored count for p and whether p is present.
func (c *Compressed) Count(p labeltree.Pattern) (int64, bool) {
	return c.CountKey(p.Key())
}

func (c *Compressed) nBlocks() int { return len(c.fences) }

func (c *Compressed) blockOff(b int) int { return int(c.offs[b]) }

// blockData returns block b's front-coded byte run; the sentinel in
// offs makes the last block no different from the rest.
func (c *Compressed) blockData(b int) []byte {
	return c.blocks[c.offs[b]:c.offs[b+1]]
}

// CountKey is Count for a precomputed canonical key: narrow to the run
// of blocks whose fences start with the key's first byte (jump table),
// binary-search that run for the last block whose first key is ≤ key,
// then run a front-coded scan inside that block. It performs no
// allocations.
//
// The scan exploits exact front-coding lcps to skip byte comparisons:
// with m = lcp(key, previous entry) and every previous entry < key, an
// entry whose stored lcp exceeds m diverges from key exactly where its
// predecessor did (still smaller, skip without touching its bytes), one
// whose lcp is below m starts with a byte already known to be greater
// (the keys are sorted — terminate), and only an entry whose lcp equals
// m needs its suffix compared.
func (c *Compressed) CountKey(key labeltree.Key) (int64, bool) {
	nb := c.nBlocks()
	if nb == 0 {
		return 0, false
	}
	s := string(key)
	p8 := prefix8(s)
	fences := c.fences
	// Search for the first block whose fence is > p8. The jump table
	// bounds it to the blocks sharing s's first byte: everything below
	// that window has a smaller first byte (fence ≤ p8), everything
	// above a larger one (fence > p8). Windows are typically zero to two
	// blocks, so the binary search does at most a couple of probes.
	lo, hi := 0, nb
	if c.jump != nil {
		t := p8 >> 56
		lo, hi = int(c.jump[t]), int(c.jump[t+1])
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if fences[mid] <= p8 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b := lo - 1
	if b < 0 {
		return 0, false // key sorts before every stored key
	}
	// Fence ties: blocks whose first keys share s's 8-byte prefix carry
	// equal fences, so b can overshoot among them. Find the tied run
	// (cheap u64 compares) and binary-search it on full first-key
	// compares; runs are almost always length 1.
	if fences[b] == p8 {
		lo := b
		for lo > 0 && fences[lo-1] == p8 {
			lo--
		}
		for lo < b {
			mid := int(uint(lo+b+1) >> 1)
			if c.cmpFirstKey(mid, s) <= 0 {
				lo = mid
			} else {
				b = mid - 1
			}
		}
		if c.cmpFirstKey(b, s) > 0 {
			// The whole run starts past s; the answer block precedes it.
			if b == 0 {
				return 0, false
			}
			b--
		}
	}
	return c.scanBlock(b, s, p8)
}

// cmpFirstKey compares block b's fully-stored first key against s.
func (c *Compressed) cmpFirstKey(b int, s string) int {
	data := c.blocks[c.blockOff(b):]
	// Restart header: lcp is 0, so the packed byte is just the key length.
	p, klen := 1, int(data[0]&15)
	if data[0] == 0xFF {
		_, n1 := binary.Uvarint(data[p:]) // lcp, always 0 for a block's first entry
		kl, n2 := binary.Uvarint(data[p+n1:])
		p += n1 + n2
		klen = int(kl)
	}
	return cmpBytesString(data[p:p+klen], s)
}

// scanBlock runs the front-coded scan described on CountKey. Entry
// headers decode from one packed byte in the common case; skipped
// entries advance past their count by scanning for the varint
// terminator instead of decoding the value; and the first entry's
// compare is seeded from the fence the block search already touched —
// the leading zero bytes of fence XOR p8 are bytes known equal, so the
// full stored key rarely needs a byte loop at all.
func (c *Compressed) scanBlock(b int, s string, p8 uint64) (int64, bool) {
	data := c.blockData(b)
	seed := 8
	if x := c.fences[b] ^ p8; x != 0 {
		seed = int(uint(bits.LeadingZeros64(x)) >> 3)
	}
	m := 0 // lcp(s, previous entry); every scanned entry so far is < s
	for p := 0; p < len(data); {
		h := data[p]
		p++
		lcp, sl := int(h>>4), int(h&15)
		if h == 0xFF {
			v1, k1 := binary.Uvarint(data[p:])
			if k1 <= 0 {
				return 0, false // unreachable on validated/built data
			}
			p += k1
			v2, k2 := binary.Uvarint(data[p:])
			if k2 <= 0 {
				return 0, false
			}
			p += k2
			lcp, sl = int(v1), int(v2)
		}
		if sl > len(data)-p {
			return 0, false
		}
		if lcp > m {
			// Entry < s: it diverges from s exactly where its predecessor
			// did. Skip suffix and count without reading either.
			p += sl
			for p < len(data) && data[p] >= 0x80 {
				p++
			}
			p++
			continue
		}
		if lcp < m {
			return 0, false // entry > s, and everything after it is larger still
		}
		suf := data[p : p+sl]
		ss := s[m:]
		p += sl
		// Advance j over bytes shared by suf and ss, capped at the
		// shorter side's length n; on exit either j == n or suf[j] and
		// ss[j] are the first differing pair. The fence seed only ever
		// applies to the block's first entry (stored in full, m=0):
		// bytes below it match in the zero-padded u64 views, and any such
		// position below both real lengths — guaranteed once clamped to
		// n — matches in the real bytes too.
		j := seed
		seed = 0
		n := sl
		if len(ss) < n {
			n = len(ss)
		}
		if j > n {
			j = n
		}
		for j < n && suf[j] == ss[j] {
			j++
		}
		if j == len(suf) && j == len(ss) {
			// One- and two-byte counts cover practically every entry;
			// longer varints take the generic decoder.
			if p < len(data) && data[p] < 0x80 {
				return int64(data[p]), true
			}
			if p+1 < len(data) && data[p+1] < 0x80 {
				return int64(data[p]&0x7F) | int64(data[p+1])<<7, true
			}
			cnt, k := binary.Uvarint(data[p:])
			if k <= 0 {
				return 0, false
			}
			return int64(cnt), true
		}
		if j < len(suf) && (j == len(ss) || suf[j] > ss[j]) {
			return 0, false // entry > s
		}
		m += j // entry < s with a longer shared prefix; keep scanning
		for p < len(data) && data[p] >= 0x80 {
			p++
		}
		p++
	}
	return 0, false
}

// Entries returns all entries of the given size in deterministic
// (canonical key) order, decoding patterns from their stored keys.
// size 0 means all sizes. Intended for inspection and tests, not the
// query path.
func (c *Compressed) Entries(size int) []Entry {
	var out []Entry
	var key []byte
	walkBlocks(c.blocks, c.offs[:c.nBlocks()], c.blockLen, c.n, &key, func(k []byte, count uint64) error {
		p, err := labeltree.DecodeKey(labeltree.Key(k))
		if err != nil {
			panic(fmt.Sprintf("lattice: compressed store holds undecodable key: %v", err))
		}
		if size == 0 || p.Size() == size {
			out = append(out, Entry{Pattern: p, Count: int64(count)})
		}
		return nil
	})
	sort.Slice(out, func(a, b int) bool {
		if sa, sb := out[a].Pattern.Size(), out[b].Pattern.Size(); sa != sb {
			return sa < sb
		}
		return out[a].Pattern.Key() < out[b].Pattern.Key()
	})
	return out
}

// Compress builds a succinct snapshot of s. The snapshot shares s's
// dictionary but none of its storage; mutating s afterwards does not
// affect the snapshot. Like Freeze, sorted keys make it deterministic:
// compressing equal summaries yields byte-identical stores.
func Compress(s *Summary) *Compressed {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	counts := make([]int64, len(keys))
	sizeBytes := 0
	for i, k := range keys {
		e := s.entries[labeltree.Key(k)]
		counts[i] = e.Count
		sizeBytes += 8 + 5*e.Pattern.Size()
	}
	c := buildCompressed(keys, counts, compressedBlockLen)
	c.k, c.dict, c.pruned, c.sizeBytes = s.k, s.dict, s.pruned, sizeBytes
	return c
}

// buildCompressed assembles the three sections from sorted distinct
// keys. Lattice-level fields (k, dict, pruned, sizeBytes) are the
// caller's to fill in.
func buildCompressed(keys []string, counts []int64, blockLen int) *Compressed {
	c := &Compressed{n: len(keys), blockLen: blockLen}
	var buf [binary.MaxVarintLen64]byte
	uv := func(dst []byte, v uint64) []byte {
		return append(dst, buf[:binary.PutUvarint(buf[:], v)]...)
	}
	prev := ""
	for i, key := range keys {
		if i%blockLen == 0 {
			if len(c.blocks) > int(^uint32(0)) {
				panic("lattice: compressed snapshot exceeds the 4GiB u32 offset layout")
			}
			c.offs = append(c.offs, uint32(len(c.blocks)))
			c.fences = append(c.fences, prefix8(key))
			prev = "" // restart point: store the block's first key in full
		}
		l := lcp(prev, key)
		sl := len(key) - l
		// Header: lcp and suffix length nibble-packed into one byte when
		// both fit (the overwhelmingly common case for short canonical
		// keys); 0xFF escapes to two uvarints otherwise.
		if l < 15 && sl < 15 {
			c.blocks = append(c.blocks, byte(l<<4|sl))
		} else {
			c.blocks = append(c.blocks, 0xFF)
			c.blocks = uv(c.blocks, uint64(l))
			c.blocks = uv(c.blocks, uint64(sl))
		}
		c.blocks = append(c.blocks, key[l:]...)
		c.blocks = uv(c.blocks, uint64(counts[i]))
		prev = key
	}
	if len(keys) > 0 {
		if len(c.blocks) > int(^uint32(0)) {
			panic("lattice: compressed snapshot exceeds the 4GiB u32 offset layout")
		}
		c.offs = append(c.offs, uint32(len(c.blocks))) // sentinel
	}
	c.jump = buildJump(c.fences)
	return c
}

// buildJump indexes the fences by their leading byte: slot t holds the
// first block whose fence starts with a byte ≥ t (slot 256 closes the
// last range), so a lookup's binary search is confined to the blocks
// sharing its key's first byte. The table is derived from the fences at
// build and open time, never serialized. Tiny stores skip it — the
// fixed 514 bytes would rival the data, and a binary search over a
// handful of fences is already a couple of probes — as do stores past
// 64Ki blocks (far beyond any real summary), which search the full
// fence array instead.
func buildJump(fences []uint64) []uint16 {
	if len(fences) < 16 || len(fences) > 0xFFFF {
		return nil
	}
	j := make([]uint16, 257)
	b := 0
	for t := 0; t <= 256; t++ {
		for b < len(fences) && int(fences[b]>>56) < t {
			b++
		}
		j[t] = uint16(b)
	}
	return j
}

// walkBlocks decodes every entry of a front-coded section in order,
// reconstructing full keys into *keyBuf (reused across entries — fn must
// not retain its argument) and enforcing the structural invariants the
// zero-allocation lookup path depends on: blocks start where the offset
// section says, every block's first entry is stored in full, lcps are
// exact, keys are strictly ascending (across block boundaries too), and
// counts stay in the range the TLAT serializer enforces. It is both the
// open-time validator for untrusted snapshot bytes and the decoder
// behind Entries and the rebind path.
func walkBlocks(blocks []byte, offs []uint32, blockLen, n int, keyBuf *[]byte, fn func(key []byte, count uint64) error) error {
	nb := len(offs)
	key := (*keyBuf)[:0]
	p := 0
	for i := 0; i < n; i++ {
		if i%blockLen == 0 {
			b := i / blockLen
			if b >= nb {
				return fmt.Errorf("lattice: compressed entry %d has no block", i)
			}
			if got := int(offs[b]); got != p {
				return fmt.Errorf("lattice: compressed block %d offset %d, expected %d", b, got, p)
			}
		}
		if p >= len(blocks) {
			return fmt.Errorf("lattice: compressed entry %d malformed", i)
		}
		h := blocks[p]
		p++
		lcpV, sufLen := uint64(h>>4), uint64(h&15)
		if h == 0xFF {
			var n1, n2 int
			lcpV, n1 = binary.Uvarint(blocks[p:])
			p += n1
			sufLen, n2 = binary.Uvarint(blocks[p:])
			p += n2
			if n1 <= 0 || n2 <= 0 {
				return fmt.Errorf("lattice: compressed entry %d malformed", i)
			}
		}
		if sufLen == 0 || sufLen > uint64(len(blocks)-p) {
			return fmt.Errorf("lattice: compressed entry %d malformed", i)
		}
		suf := blocks[p : p+int(sufLen)]
		p += int(sufLen)
		atRestart := i%blockLen == 0
		switch {
		case atRestart && lcpV != 0:
			return fmt.Errorf("lattice: compressed block first entry %d front-coded", i)
		case lcpV > uint64(len(key)):
			return fmt.Errorf("lattice: compressed entry %d lcp %d exceeds previous key", i, lcpV)
		case !atRestart && int(lcpV) < len(key) && suf[0] <= key[lcpV]:
			return fmt.Errorf("lattice: compressed entry %d breaks key order (or inexact lcp)", i)
		case atRestart && i > 0 && bytes.Compare(suf, key) <= 0:
			// The restart entry is stored in full (lcp 0), so it can be
			// order-checked against the previous block's last key directly.
			return fmt.Errorf("lattice: compressed block of entry %d breaks key order", i)
		}
		key = append(key[:int(lcpV)], suf...)
		cnt, n3 := binary.Uvarint(blocks[p:])
		p += n3
		if n3 <= 0 || cnt > 1<<62 {
			return fmt.Errorf("lattice: compressed entry %d count malformed", i)
		}
		if fn != nil {
			if err := fn(key, cnt); err != nil {
				return err
			}
		}
	}
	if p != len(blocks) {
		return fmt.Errorf("lattice: compressed block section has %d trailing bytes", len(blocks)-p)
	}
	if want := (n + blockLen - 1) / blockLen; n > 0 && nb != want {
		return fmt.Errorf("lattice: compressed store has %d blocks, expected %d", nb, want)
	}
	if n == 0 && (nb != 0 || len(blocks) != 0) {
		return fmt.Errorf("lattice: empty compressed store carries data")
	}
	*keyBuf = key
	return nil
}

// prefix8 packs a key's first 8 bytes big-endian, zero-padded, so u64
// comparison orders fences exactly like a bytewise compare of the keys
// they were cut from (ties, including short keys, need a full compare).
// The full-width case is spelled out so the compiler combines it into a
// single 8-byte load.
func prefix8[K ~string | ~[]byte](k K) uint64 {
	if len(k) >= 8 {
		return uint64(k[7]) | uint64(k[6])<<8 | uint64(k[5])<<16 | uint64(k[4])<<24 |
			uint64(k[3])<<32 | uint64(k[2])<<40 | uint64(k[1])<<48 | uint64(k[0])<<56
	}
	var v uint64
	for i := 0; i < len(k); i++ {
		v |= uint64(k[i]) << (56 - 8*i)
	}
	return v
}

// lcp returns the length of the longest common prefix of a and b.
func lcp(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// cmpBytesString is bytes.Compare across the two key representations,
// allocation-free.
func cmpBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) == len(s):
		return 0
	case len(b) < len(s):
		return -1
	}
	return 1
}
