//go:build !linux

package lattice

import "os"

// mmapFile on platforms without a wired-up mmap path reads the whole
// snapshot onto the heap; the nil release function tells callers there
// is no mapping to manage.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	return readAllFile(f, fi.Size())
}
