package lattice_test

import (
	"bytes"
	"math/rand"
	"testing"

	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/mine"
	"treelattice/internal/treetest"
)

// randomSummary builds a summary of random patterns, optionally pruned.
func randomSummary(t testing.TB, seed int64, n int) (*lattice.Summary, *labeltree.Dict) {
	t.Helper()
	d, alphabet := treetest.Alphabet(5)
	rng := rand.New(rand.NewSource(seed))
	s := lattice.New(4, d)
	for i := 0; i < n; i++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		if err := s.Add(p, int64(rng.Intn(1000)+1)); err != nil {
			t.Fatal(err)
		}
	}
	return s, d
}

// assertFrozenMatches checks that f answers exactly like s for every
// stored entry and for a probe of absent patterns.
func assertFrozenMatches(t *testing.T, s *lattice.Summary, f *lattice.Frozen) {
	t.Helper()
	if f.K() != s.K() || f.Len() != s.Len() || f.Pruned() != s.Pruned() || f.SizeBytes() != s.SizeBytes() {
		t.Fatalf("frozen header mismatch: K=%d/%d len=%d/%d pruned=%v/%v bytes=%d/%d",
			f.K(), s.K(), f.Len(), s.Len(), f.Pruned(), s.Pruned(), f.SizeBytes(), s.SizeBytes())
	}
	for _, e := range s.Entries(0) {
		key := e.Pattern.Key()
		got, ok := f.CountKey(key)
		if !ok || got != e.Count {
			t.Fatalf("CountKey(%x) = %d,%v; summary has %d", key, got, ok, e.Count)
		}
		if got, ok := f.Count(e.Pattern); !ok || got != e.Count {
			t.Fatalf("Count = %d,%v; summary has %d", got, ok, e.Count)
		}
	}
}

func TestFreezeMatchesSummary(t *testing.T) {
	s, d := randomSummary(t, 17, 120)
	f := lattice.Freeze(s)
	assertFrozenMatches(t, s, f)
	// Absent patterns miss in both backends.
	rng := rand.New(rand.NewSource(99))
	_, alphabet := treetest.Alphabet(5)
	_ = d
	for i := 0; i < 50; i++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		_, inMap := s.Count(p)
		_, inFrozen := f.Count(p)
		if inMap != inFrozen {
			t.Fatalf("presence diverges for %x: map=%v frozen=%v", p.Key(), inMap, inFrozen)
		}
	}
}

func TestFreezePreservesPrunedFlag(t *testing.T) {
	s, _ := randomSummary(t, 23, 60)
	pruned := s.Filter(func(e lattice.Entry) bool { return e.Pattern.Size() < 3 })
	f := lattice.Freeze(pruned)
	if !f.Pruned() {
		t.Fatal("pruned flag lost in Freeze")
	}
	assertFrozenMatches(t, pruned, f)
}

func TestFreezeIsSnapshot(t *testing.T) {
	d := labeltree.NewDict()
	a := d.Intern("a")
	s := lattice.New(3, d)
	p := labeltree.SingleNode(a)
	if err := s.Add(p, 5); err != nil {
		t.Fatal(err)
	}
	f := lattice.Freeze(s)
	if err := s.Add(p, 9); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Count(p); got != 5 {
		t.Fatalf("snapshot saw later mutation: count = %d, want 5", got)
	}
}

func TestReadFrozenMatchesRead(t *testing.T) {
	s, _ := randomSummary(t, 31, 150)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Load both backends into a fresh dictionary with shifted IDs so the
	// comparison exercises label remapping too.
	d2 := labeltree.NewDict()
	d2.Intern("unrelated")
	viaMap, err := lattice.Read(bytes.NewReader(data), d2)
	if err != nil {
		t.Fatal(err)
	}
	d3 := labeltree.NewDict()
	d3.Intern("unrelated")
	viaFrozen, err := lattice.ReadFrozen(bytes.NewReader(data), d3)
	if err != nil {
		t.Fatal(err)
	}
	assertFrozenMatches(t, viaMap, viaFrozen)
}

func TestFrozenEntriesMatchSummary(t *testing.T) {
	s, _ := randomSummary(t, 41, 80)
	f := lattice.Freeze(s)
	for _, size := range []int{0, 1, 2, 3, 4} {
		want, got := s.Entries(size), f.Entries(size)
		if len(want) != len(got) {
			t.Fatalf("Entries(%d): %d vs %d entries", size, len(want), len(got))
		}
		for i := range want {
			if want[i].Pattern.Key() != got[i].Pattern.Key() || want[i].Count != got[i].Count {
				t.Fatalf("Entries(%d)[%d] diverges", size, i)
			}
		}
	}
}

// TestFrozenDifferentialMined is the differential property test of the
// issue: for every pattern the miner enumerates on the example corpora,
// the frozen store must return exactly the map-backed count — both for a
// complete and for a pruned summary, and both for Freeze and ReadFrozen.
func TestFrozenDifferentialMined(t *testing.T) {
	for _, profile := range datagen.AllProfiles() {
		t.Run(string(profile), func(t *testing.T) {
			dict := labeltree.NewDict()
			tree, err := datagen.Generate(datagen.Config{Profile: profile, Scale: 800, Seed: 7}, dict)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := mine.Mine(tree, 4, mine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			variants := map[string]*lattice.Summary{
				"complete": sum,
				"pruned":   sum.Filter(func(e lattice.Entry) bool { return e.Count > 2 || e.Pattern.Size() <= 2 }),
			}
			for name, s := range variants {
				frozen := lattice.Freeze(s)
				var buf bytes.Buffer
				if _, err := s.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				loaded, err := lattice.ReadFrozen(&buf, dict)
				if err != nil {
					t.Fatal(err)
				}
				// Probe with every pattern of the complete lattice so the
				// pruned variant also exercises misses.
				for _, e := range sum.Entries(0) {
					key := e.Pattern.Key()
					wantC, wantOK := s.CountKey(key)
					for which, f := range map[string]*lattice.Frozen{"freeze": frozen, "read": loaded} {
						gotC, gotOK := f.CountKey(key)
						if gotC != wantC || gotOK != wantOK {
							t.Fatalf("%s/%s: CountKey(%x) = %d,%v want %d,%v",
								name, which, key, gotC, gotOK, wantC, wantOK)
						}
					}
				}
			}
		})
	}
}

// TestFrozenDuplicateEntries pins last-wins semantics on hand-crafted
// serialized input holding the same pattern twice: Read and ReadFrozen
// must agree on both the surviving count and the entry count.
func TestFrozenDuplicateEntries(t *testing.T) {
	// magic, version, K=2, not pruned, 1 label "a", 2 entries of the
	// single-node pattern with counts 7 then 9.
	var buf bytes.Buffer
	buf.WriteString("TLAT")
	buf.WriteByte(1)           // version
	buf.WriteByte(2)           // K
	buf.WriteByte(0)           // pruned
	buf.WriteByte(1)           // one label
	buf.WriteByte(1)           // len("a")
	buf.WriteString("a")       //
	buf.WriteByte(2)           // two entries
	buf.Write([]byte{1, 0, 7}) // size=1, label 0, count 7
	buf.Write([]byte{1, 0, 9}) // size=1, label 0, count 9
	data := buf.Bytes()

	viaMap, err := lattice.Read(bytes.NewReader(data), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	viaFrozen, err := lattice.ReadFrozen(bytes.NewReader(data), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if viaMap.Len() != 1 || viaFrozen.Len() != 1 {
		t.Fatalf("Len = %d (map) / %d (frozen), want 1", viaMap.Len(), viaFrozen.Len())
	}
	if viaMap.SizeBytes() != viaFrozen.SizeBytes() {
		t.Fatalf("SizeBytes diverges: %d vs %d", viaMap.SizeBytes(), viaFrozen.SizeBytes())
	}
	p := labeltree.SingleNode(viaFrozen.Dict().Intern("a"))
	if got, _ := viaFrozen.Count(p); got != 9 {
		t.Fatalf("frozen duplicate count = %d, want last-wins 9", got)
	}
}

func TestFrozenEmpty(t *testing.T) {
	d := labeltree.NewDict()
	f := lattice.Freeze(lattice.New(3, d))
	if f.Len() != 0 || f.SizeBytes() != 0 {
		t.Fatalf("empty frozen: len=%d bytes=%d", f.Len(), f.SizeBytes())
	}
	if _, ok := f.Count(labeltree.SingleNode(d.Intern("a"))); ok {
		t.Fatal("empty frozen reported a hit")
	}
}

func TestFrozenLookupAllocs(t *testing.T) {
	s, _ := randomSummary(t, 53, 100)
	f := lattice.Freeze(s)
	keys := make([]labeltree.Key, 0, s.Len())
	for _, e := range s.Entries(0) {
		keys = append(keys, e.Pattern.Key())
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		f.CountKey(keys[i%len(keys)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("CountKey allocates %.1f per op, want 0", allocs)
	}
}

// FuzzFrozenLoad: ReadFrozen never panics on arbitrary bytes, and it
// accepts exactly the inputs Read accepts — when both succeed they agree
// on every header field and every count.
func FuzzFrozenLoad(f *testing.F) {
	seed, _ := randomSummary(f, 61, 40)
	var buf bytes.Buffer
	if _, err := seed.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TLAT"))
	f.Add([]byte("TLAT\x01\x02\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		viaFrozen, errF := lattice.ReadFrozen(bytes.NewReader(data), labeltree.NewDict())
		viaMap, errM := lattice.Read(bytes.NewReader(data), labeltree.NewDict())
		if (errF == nil) != (errM == nil) {
			t.Fatalf("loaders disagree: frozen err=%v, map err=%v", errF, errM)
		}
		if errF != nil {
			return
		}
		if viaFrozen.K() != viaMap.K() || viaFrozen.Len() != viaMap.Len() ||
			viaFrozen.Pruned() != viaMap.Pruned() || viaFrozen.SizeBytes() != viaMap.SizeBytes() {
			t.Fatal("loaders disagree on header fields")
		}
		for _, e := range viaMap.Entries(0) {
			key := e.Pattern.Key()
			got, ok := viaFrozen.CountKey(key)
			if !ok || got != e.Count {
				t.Fatalf("CountKey(%x) = %d,%v; map loader has %d", key, got, ok, e.Count)
			}
		}
	})
}
