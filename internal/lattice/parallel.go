package lattice

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Reduce merges per-worker shard summaries into a single summary using a
// parallel pairwise reduction: on each round adjacent shard pairs are
// merged concurrently (each pair touches two disjoint summaries, so no
// locking is needed), halving the shard count until one remains. The
// merge order is fixed by shard position, and counts are additive, so the
// result is identical to a sequential left-to-right merge regardless of
// worker count.
//
// Reduce consumes the shards: it merges into them in place and the caller
// must not reuse them afterwards. workers <= 0 means GOMAXPROCS.
func Reduce(ctx context.Context, shards []*Summary, workers int) (*Summary, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("lattice: reduce of zero shards")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cur := append([]*Summary(nil), shards...)
	for len(cur) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pairs := len(cur) / 2
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		errs := make([]error, pairs)
		for i := 0; i < pairs; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = cur[2*i].Merge(cur[2*i+1])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		next := make([]*Summary, 0, (len(cur)+1)/2)
		for i := 0; i < pairs; i++ {
			next = append(next, cur[2*i])
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0], nil
}
