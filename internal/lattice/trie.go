package lattice

import "treelattice/internal/labeltree"

// TrieStore is a byte-trie over canonical pattern keys, the alternative
// summary store the paper considered and rejected (Section 4.2: prefix
// trees lose to hash tables because of pointer chasing). It exists for
// the store ablation benchmark and as an executable record of that design
// decision.
type TrieStore struct {
	root trieNode
	n    int
}

type trieNode struct {
	children map[byte]*trieNode
	count    int64
	present  bool
}

// NewTrieStore returns an empty trie store.
func NewTrieStore() *TrieStore { return &TrieStore{} }

// FromSummary loads every entry of s into a trie store.
func FromSummary(s *Summary) *TrieStore {
	t := NewTrieStore()
	for _, e := range s.Entries(0) {
		t.Put(e.Pattern.Key(), e.Count)
	}
	return t
}

// Put stores count under key, replacing any previous value.
func (t *TrieStore) Put(key labeltree.Key, count int64) {
	at := &t.root
	for i := 0; i < len(key); i++ {
		if at.children == nil {
			at.children = make(map[byte]*trieNode)
		}
		next, ok := at.children[key[i]]
		if !ok {
			next = &trieNode{}
			at.children[key[i]] = next
		}
		at = next
	}
	if !at.present {
		t.n++
	}
	at.present = true
	at.count = count
}

// Get returns the stored count for key and whether it is present.
func (t *TrieStore) Get(key labeltree.Key) (int64, bool) {
	at := &t.root
	for i := 0; i < len(key); i++ {
		next, ok := at.children[key[i]]
		if !ok {
			return 0, false
		}
		at = next
	}
	return at.count, at.present
}

// Len reports the number of stored keys.
func (t *TrieStore) Len() int { return t.n }
