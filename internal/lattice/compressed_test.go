package lattice_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"treelattice/internal/datagen"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/mine"
	"treelattice/internal/treetest"
)

// assertCompressedMatches checks that c answers exactly like s for every
// stored entry, including the header fields the estimators branch on.
func assertCompressedMatches(t *testing.T, s *lattice.Summary, c *lattice.Compressed) {
	t.Helper()
	if c.K() != s.K() || c.Len() != s.Len() || c.Pruned() != s.Pruned() || c.SizeBytes() != s.SizeBytes() {
		t.Fatalf("compressed header mismatch: K=%d/%d len=%d/%d pruned=%v/%v bytes=%d/%d",
			c.K(), s.K(), c.Len(), s.Len(), c.Pruned(), s.Pruned(), c.SizeBytes(), s.SizeBytes())
	}
	for _, e := range s.Entries(0) {
		key := e.Pattern.Key()
		got, ok := c.CountKey(key)
		if !ok || got != e.Count {
			t.Fatalf("CountKey(%x) = %d,%v; summary has %d", key, got, ok, e.Count)
		}
		if got, ok := c.Count(e.Pattern); !ok || got != e.Count {
			t.Fatalf("Count = %d,%v; summary has %d", got, ok, e.Count)
		}
	}
}

// remapPattern rebuilds p, keyed against from, in the to dictionary.
func remapPattern(t testing.TB, p labeltree.Pattern, from, to *labeltree.Dict) labeltree.Pattern {
	t.Helper()
	n := p.Size()
	labels := make([]labeltree.LabelID, n)
	parents := make([]int32, n)
	parents[0] = -1
	for i := int32(0); int(i) < n; i++ {
		labels[i] = to.Intern(from.Name(p.Label(i)))
		if i > 0 {
			parents[i] = p.Parent(i)
		}
	}
	np, err := labeltree.NewPattern(labels, parents)
	if err != nil {
		t.Fatalf("remapping pattern: %v", err)
	}
	return np
}

func TestCompressMatchesSummary(t *testing.T) {
	s, _ := randomSummary(t, 17, 120)
	c := lattice.Compress(s)
	assertCompressedMatches(t, s, c)
	// Absent patterns miss in both backends.
	rng := rand.New(rand.NewSource(99))
	_, alphabet := treetest.Alphabet(5)
	for i := 0; i < 50; i++ {
		p := treetest.RandomPattern(rng, 1+rng.Intn(4), alphabet)
		_, inMap := s.Count(p)
		_, inComp := c.Count(p)
		if inMap != inComp {
			t.Fatalf("presence diverges for %x: map=%v compressed=%v", p.Key(), inMap, inComp)
		}
	}
}

func TestCompressIsSnapshot(t *testing.T) {
	d := labeltree.NewDict()
	s := lattice.New(3, d)
	p := labeltree.SingleNode(d.Intern("a"))
	if err := s.Add(p, 5); err != nil {
		t.Fatal(err)
	}
	c := lattice.Compress(s)
	if err := s.Add(p, 9); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Count(p); got != 5 {
		t.Fatalf("snapshot saw later mutation: count = %d, want 5", got)
	}
}

func TestCompressedEntriesMatchSummary(t *testing.T) {
	s, _ := randomSummary(t, 41, 80)
	c := lattice.Compress(s)
	for _, size := range []int{0, 1, 2, 3, 4} {
		want, got := s.Entries(size), c.Entries(size)
		if len(want) != len(got) {
			t.Fatalf("Entries(%d): %d vs %d entries", size, len(want), len(got))
		}
		for i := range want {
			if want[i].Pattern.Key() != got[i].Pattern.Key() || want[i].Count != got[i].Count {
				t.Fatalf("Entries(%d)[%d] diverges", size, i)
			}
		}
	}
}

// TestOpenCompressedZeroCopyAndRebind loads a TLCZ snapshot both into a
// fresh dictionary (file-local label IDs reproduced — the zero-copy
// serving path) and into a dictionary whose IDs are shifted (forcing the
// rebind path), and holds both bit-identical to the TLAT loaders on the
// same summary.
func TestOpenCompressedZeroCopyAndRebind(t *testing.T) {
	s, _ := randomSummary(t, 31, 150)
	var tlat, tlcz bytes.Buffer
	if _, err := s.WriteTo(&tlat); err != nil {
		t.Fatal(err)
	}
	if _, err := lattice.WriteCompressed(&tlcz, s); err != nil {
		t.Fatal(err)
	}

	// Fresh dictionaries: TLAT's and TLCZ's label tables are both in
	// first-use order over the canonical entries, so both loads assign
	// identical IDs and keys compare directly.
	viaMap, err := lattice.Read(bytes.NewReader(tlat.Bytes()), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	zeroCopy, err := lattice.OpenCompressed(tlcz.Bytes(), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	assertCompressedMatches(t, viaMap, zeroCopy)

	// Shifted dictionaries exercise the rebind path the same way.
	dMap := labeltree.NewDict()
	dMap.Intern("unrelated")
	shiftedMap, err := lattice.Read(bytes.NewReader(tlat.Bytes()), dMap)
	if err != nil {
		t.Fatal(err)
	}
	dComp := labeltree.NewDict()
	dComp.Intern("unrelated")
	rebound, err := lattice.OpenCompressed(tlcz.Bytes(), dComp)
	if err != nil {
		t.Fatal(err)
	}
	assertCompressedMatches(t, shiftedMap, rebound)
}

func TestWriteCompressedDeterministic(t *testing.T) {
	s, _ := randomSummary(t, 47, 90)
	var a, b bytes.Buffer
	if _, err := lattice.WriteCompressed(&a, s); err != nil {
		t.Fatal(err)
	}
	if _, err := lattice.WriteCompressed(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteCompressed is not deterministic")
	}
}

// TestCompressedDifferentialMined mirrors TestFrozenDifferentialMined:
// on every generator profile, complete and pruned, the compressed
// backend — built in memory, opened zero-copy from serialized bytes, and
// opened from an mmap'ed file — answers exactly like the map and frozen
// backends for every mined pattern.
func TestCompressedDifferentialMined(t *testing.T) {
	dir := t.TempDir()
	for _, profile := range datagen.AllProfiles() {
		t.Run(string(profile), func(t *testing.T) {
			dict := labeltree.NewDict()
			tree, err := datagen.Generate(datagen.Config{Profile: profile, Scale: 800, Seed: 7}, dict)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := mine.Mine(tree, 4, mine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			variants := map[string]*lattice.Summary{
				"complete": sum,
				"pruned":   sum.Filter(func(e lattice.Entry) bool { return e.Count > 2 || e.Pattern.Size() <= 2 }),
			}
			for name, s := range variants {
				frozen := lattice.Freeze(s)
				inMemory := lattice.Compress(s)

				var tlcz bytes.Buffer
				if _, err := lattice.WriteCompressed(&tlcz, s); err != nil {
					t.Fatal(err)
				}
				fileDict := labeltree.NewDict()
				opened, err := lattice.OpenCompressed(tlcz.Bytes(), fileDict)
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(dir, string(profile)+"-"+name+".tlat")
				if err := os.WriteFile(path, tlcz.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				mapDict := labeltree.NewDict()
				mapped, err := lattice.OpenCompressedFile(path, mapDict)
				if err != nil {
					t.Fatal(err)
				}

				if inMemory.ResidentBytes() >= frozen.ResidentBytes() {
					t.Errorf("%s: compressed resident %d not below frozen %d",
						name, inMemory.ResidentBytes(), frozen.ResidentBytes())
				}

				// Probe with every pattern of the complete lattice so the
				// pruned variant also exercises misses.
				for _, e := range sum.Entries(0) {
					key := e.Pattern.Key()
					wantC, wantOK := s.CountKey(key)
					if gotC, gotOK := frozen.CountKey(key); gotC != wantC || gotOK != wantOK {
						t.Fatalf("%s/frozen: CountKey(%x) = %d,%v want %d,%v", name, key, gotC, gotOK, wantC, wantOK)
					}
					if gotC, gotOK := inMemory.CountKey(key); gotC != wantC || gotOK != wantOK {
						t.Fatalf("%s/compress: CountKey(%x) = %d,%v want %d,%v", name, key, gotC, gotOK, wantC, wantOK)
					}
					fileKey := remapPattern(t, e.Pattern, dict, fileDict).Key()
					if gotC, gotOK := opened.CountKey(fileKey); gotC != wantC || gotOK != wantOK {
						t.Fatalf("%s/open: CountKey(%x) = %d,%v want %d,%v", name, fileKey, gotC, gotOK, wantC, wantOK)
					}
					mapKey := remapPattern(t, e.Pattern, dict, mapDict).Key()
					if gotC, gotOK := mapped.CountKey(mapKey); gotC != wantC || gotOK != wantOK {
						t.Fatalf("%s/mmap: CountKey(%x) = %d,%v want %d,%v", name, mapKey, gotC, gotOK, wantC, wantOK)
					}
				}
				if err := mapped.Close(); err != nil {
					t.Fatal(err)
				}
				if _, ok := mapped.CountKey(sum.Entries(0)[0].Pattern.Key()); ok {
					t.Fatal("closed store reported a hit")
				}
			}
		})
	}
}

// TestOpenCompressedFileResident pins the zero-copy property: a fresh
// dictionary open keeps exactly the snapshot file resident.
func TestOpenCompressedFileResident(t *testing.T) {
	s, _ := randomSummary(t, 53, 200)
	var tlcz bytes.Buffer
	if _, err := lattice.WriteCompressed(&tlcz, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "summary.tlat")
	if err := os.WriteFile(path, tlcz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := lattice.OpenCompressedFile(path, labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A zero-copy open keeps the whole snapshot resident plus the decoded
	// fence words (8 bytes per block) and the 257-slot first-byte jump
	// table the block search probes natively.
	if got := c.ResidentBytes(); got <= tlcz.Len() || got > tlcz.Len()+8*(c.Len()+7)+2*257 {
		t.Fatalf("ResidentBytes = %d, want snapshot size %d plus decoded search index", got, tlcz.Len())
	}
}

func TestCompressedEmpty(t *testing.T) {
	d := labeltree.NewDict()
	s := lattice.New(3, d)
	c := lattice.Compress(s)
	if c.Len() != 0 || c.SizeBytes() != 0 {
		t.Fatalf("empty compressed: len=%d bytes=%d", c.Len(), c.SizeBytes())
	}
	if _, ok := c.Count(labeltree.SingleNode(d.Intern("a"))); ok {
		t.Fatal("empty compressed reported a hit")
	}
	var tlcz bytes.Buffer
	if _, err := lattice.WriteCompressed(&tlcz, s); err != nil {
		t.Fatal(err)
	}
	rt, err := lattice.OpenCompressed(tlcz.Bytes(), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 0 {
		t.Fatalf("round-tripped empty store has %d entries", rt.Len())
	}
}

func TestCompressedLookupAllocs(t *testing.T) {
	s, _ := randomSummary(t, 53, 100)
	var tlcz bytes.Buffer
	if _, err := lattice.WriteCompressed(&tlcz, s); err != nil {
		t.Fatal(err)
	}
	opened, err := lattice.OpenCompressed(tlcz.Bytes(), labeltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*lattice.Compressed{
		"compress": lattice.Compress(s),
		"opened":   opened,
	} {
		keys := make([]labeltree.Key, 0, c.Len())
		for _, e := range c.Entries(0) {
			keys = append(keys, e.Pattern.Key())
		}
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			c.CountKey(keys[i%len(keys)])
			i++
		})
		if allocs != 0 {
			t.Fatalf("%s: CountKey allocates %.1f per op, want 0", name, allocs)
		}
	}
}

// TestOpenCompressedRejectsCorruption flips bytes across the snapshot
// and requires every corruption to be caught by the checksum or the
// structural validator — never served.
func TestOpenCompressedRejectsCorruption(t *testing.T) {
	s, _ := randomSummary(t, 59, 80)
	var tlcz bytes.Buffer
	if _, err := lattice.WriteCompressed(&tlcz, s); err != nil {
		t.Fatal(err)
	}
	clean := tlcz.Bytes()
	if _, err := lattice.OpenCompressed(clean, labeltree.NewDict()); err != nil {
		t.Fatal(err)
	}
	for pos := 64; pos < len(clean); pos += 97 {
		data := append([]byte(nil), clean...)
		data[pos] ^= 0x40
		if _, err := lattice.OpenCompressed(data, labeltree.NewDict()); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	for _, n := range []int{0, 3, 63, len(clean) - 1} {
		if _, err := lattice.OpenCompressed(clean[:n], labeltree.NewDict()); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// FuzzCompressedLoad: OpenCompressed never panics on arbitrary bytes,
// and every TLAT input the existing loaders accept survives the
// round trip through the compressed form with bit-identical counts
// against ReadFrozen on the same serialized bytes.
func FuzzCompressedLoad(f *testing.F) {
	seed, _ := randomSummary(f, 61, 40)
	var tlat, tlcz bytes.Buffer
	if _, err := seed.WriteTo(&tlat); err != nil {
		f.Fatal(err)
	}
	if _, err := lattice.WriteCompressed(&tlcz, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(tlat.Bytes())
	f.Add(tlcz.Bytes())
	f.Add([]byte("TLCZ"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic the opener; a store it does
		// accept must survive probing.
		if c, err := lattice.OpenCompressed(data, labeltree.NewDict()); err == nil {
			c.CountKey(labeltree.Key("\x01\x00"))
			for _, e := range c.Entries(0) {
				if _, ok := c.CountKey(e.Pattern.Key()); !ok {
					t.Fatal("accepted store misses its own entry")
				}
			}
		}
		// Differential leg: TLAT-valid bytes round-trip through TLCZ.
		mapDict := labeltree.NewDict()
		s, err := lattice.Read(bytes.NewReader(data), mapDict)
		if err != nil {
			return
		}
		fz, err := lattice.ReadFrozen(bytes.NewReader(data), labeltree.NewDict())
		if err != nil {
			t.Fatalf("Read accepted input ReadFrozen rejects: %v", err)
		}
		var buf bytes.Buffer
		if _, err := lattice.WriteCompressed(&buf, s); err != nil {
			t.Fatalf("WriteCompressed on loaded summary: %v", err)
		}
		compDict := labeltree.NewDict()
		c, err := lattice.OpenCompressed(buf.Bytes(), compDict)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if c.K() != s.K() || c.Len() != s.Len() || c.Pruned() != s.Pruned() || c.SizeBytes() != s.SizeBytes() {
			t.Fatal("round trip disagrees on header fields")
		}
		for _, e := range s.Entries(0) {
			key := e.Pattern.Key()
			wantC, wantOK := fz.CountKey(key) // fresh-dict frozen: same IDs as s
			if wantC != e.Count || !wantOK {
				t.Fatalf("frozen loader diverges from map loader on %x", key)
			}
			ck := remapPattern(t, e.Pattern, mapDict, compDict).Key()
			if gotC, gotOK := c.CountKey(ck); gotC != wantC || gotOK != wantOK {
				t.Fatalf("compressed CountKey(%x) = %d,%v want %d,%v", ck, gotC, gotOK, wantC, wantOK)
			}
		}
	})
}
