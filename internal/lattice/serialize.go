package lattice

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"treelattice/internal/labeltree"
)

// Binary format (little-endian, varint for variable-size fields):
//
//	magic "TLAT" | version u8 | K uvarint | pruned u8
//	labelCount uvarint | labelCount × (len uvarint, bytes)
//	entryCount uvarint | entryCount × entry
//	entry: size uvarint | size × label uvarint | (size-1) × parent uvarint
//	       (node 0's parent is implicit) | count uvarint
const (
	magic   = "TLAT"
	version = 1
)

// WriteTo serializes the summary. Label IDs are written as indexes into an
// embedded label-name table, so the summary can be loaded against any
// dictionary.
func (s *Summary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	cw.write([]byte(magic))
	cw.write([]byte{version})
	cw.uvarint(uint64(s.k))
	if s.pruned {
		cw.write([]byte{1})
	} else {
		cw.write([]byte{0})
	}
	// Collect the labels actually used, in first-use order.
	used := make(map[labeltree.LabelID]uint64)
	var names []string
	entries := s.Entries(0)
	for _, e := range entries {
		for i := int32(0); int(i) < e.Pattern.Size(); i++ {
			l := e.Pattern.Label(i)
			if _, ok := used[l]; !ok {
				used[l] = uint64(len(names))
				names = append(names, s.dict.Name(l))
			}
		}
	}
	cw.uvarint(uint64(len(names)))
	for _, n := range names {
		cw.uvarint(uint64(len(n)))
		cw.write([]byte(n))
	}
	cw.uvarint(uint64(len(entries)))
	for _, e := range entries {
		n := e.Pattern.Size()
		cw.uvarint(uint64(n))
		for i := int32(0); int(i) < n; i++ {
			cw.uvarint(used[e.Pattern.Label(i)])
		}
		for i := int32(1); int(i) < n; i++ {
			cw.uvarint(uint64(e.Pattern.Parent(i)))
		}
		cw.uvarint(uint64(e.Count))
	}
	if cw.err == nil {
		cw.err = bw.Flush()
	}
	return cw.n, cw.err
}

// Read deserializes a summary written by WriteTo, interning labels into
// dict.
func Read(r io.Reader, dict *labeltree.Dict) (*Summary, error) {
	sr, err := newSummaryReader(r, dict)
	if err != nil {
		return nil, err
	}
	s := New(sr.k, dict)
	s.pruned = sr.pruned
	for e := uint64(0); e < sr.nEntries; e++ {
		p, count, err := sr.next(e)
		if err != nil {
			return nil, err
		}
		if err := s.Add(p, count); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// summaryReader streams a serialized summary: header (magic, K, pruned
// flag, label table) up front, then nEntries patterns on demand. Both the
// map-backed Read and the frozen-store ReadFrozen decode through it, so
// the two loaders accept exactly the same byte strings.
type summaryReader struct {
	br       *bufio.Reader
	k        int
	pruned   bool
	ids      []labeltree.LabelID
	nEntries uint64
}

// newSummaryReader validates the header and label table, leaving the
// reader positioned at the first entry.
func newSummaryReader(r io.Reader, dict *labeltree.Dict) (*summaryReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("lattice: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("lattice: bad magic %q", head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("lattice: unsupported version %d", head[len(magic)])
	}
	k, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("lattice: reading K: %w", err)
	}
	if k < 2 || k > 1<<20 {
		return nil, fmt.Errorf("lattice: implausible K=%d", k)
	}
	prunedByte, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("lattice: reading pruned flag: %w", err)
	}
	nLabels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("lattice: reading label count: %w", err)
	}
	if nLabels > 1<<24 {
		return nil, fmt.Errorf("lattice: implausible label count %d", nLabels)
	}
	ids := make([]labeltree.LabelID, nLabels)
	for i := range ids {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("lattice: reading label %d: %w", i, err)
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("lattice: label %d implausibly long (%d bytes)", i, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("lattice: reading label %d: %w", i, err)
		}
		ids[i] = dict.Intern(string(buf))
	}
	nEntries, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("lattice: reading entry count: %w", err)
	}
	return &summaryReader{br: br, k: int(k), pruned: prunedByte == 1, ids: ids, nEntries: nEntries}, nil
}

// next decodes the e'th entry (e is only for error messages).
func (sr *summaryReader) next(e uint64) (labeltree.Pattern, int64, error) {
	size, err := binary.ReadUvarint(sr.br)
	if err != nil || size == 0 || size > uint64(sr.k) {
		return labeltree.Pattern{}, 0, fmt.Errorf("lattice: entry %d has bad size %d (err %v)", e, size, err)
	}
	labels := make([]labeltree.LabelID, size)
	for i := range labels {
		li, err := binary.ReadUvarint(sr.br)
		if err != nil || li >= uint64(len(sr.ids)) {
			return labeltree.Pattern{}, 0, fmt.Errorf("lattice: entry %d has bad label (err %v)", e, err)
		}
		labels[i] = sr.ids[li]
	}
	parents := make([]int32, size)
	parents[0] = -1
	for i := 1; i < int(size); i++ {
		pi, err := binary.ReadUvarint(sr.br)
		if err != nil {
			return labeltree.Pattern{}, 0, fmt.Errorf("lattice: entry %d parent: %w", e, err)
		}
		parents[i] = int32(pi)
	}
	count, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return labeltree.Pattern{}, 0, fmt.Errorf("lattice: entry %d count: %w", e, err)
	}
	if count > 1<<62 {
		return labeltree.Pattern{}, 0, fmt.Errorf("lattice: entry %d count %d overflows", e, count)
	}
	p, err := labeltree.NewPattern(labels, parents)
	if err != nil {
		return labeltree.Pattern{}, 0, fmt.Errorf("lattice: entry %d: %w", e, err)
	}
	return p, int64(count), nil
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

func (c *countWriter) write(b []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(b)
	c.n += int64(n)
	c.err = err
}

func (c *countWriter) uvarint(v uint64) {
	n := binary.PutUvarint(c.buf[:], v)
	c.write(c.buf[:n])
}
