package lattice

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"treelattice/internal/labeltree"
)

// ErrSnapshotTooLarge reports a snapshot whose flat storage would exceed
// what the u32 offset layouts (frozen arena, compressed block section)
// can address. Match it with errors.Is.
var ErrSnapshotTooLarge = errors.New("lattice: snapshot exceeds 4GiB addressable layout")

// frozenArenaLimit bounds the key arena ReadFrozen may assemble. A
// variable only so tests can lower it and cover the guard without
// materializing 4GiB of keys.
var frozenArenaLimit = math.MaxUint32

// Frozen is an immutable, read-optimized snapshot of a K-lattice. All
// canonical key bytes live in one flat arena addressed by an
// open-addressing index, so a lookup touches two small slices and the
// arena — no per-entry header objects, no map iteration order, and no
// write barriers on the read path. It is safe for concurrent use by any
// number of readers.
//
// A Frozen is built either from a populated *Summary (Freeze) or
// directly from the serialized form (ReadFrozen), the latter without
// ever materializing the Go map — the layout the serving path loads.
type Frozen struct {
	k      int
	dict   *labeltree.Dict
	pruned bool

	arena  []byte   // concatenated canonical key bytes of all entries
	offs   []uint32 // len(counts)+1; entry i's key is arena[offs[i]:offs[i+1]]
	counts []int64  // entry i's occurrence count

	table []int32 // open addressing: slot -> entry index, -1 = empty
	mask  uint32  // len(table)-1; table size is a power of two

	sizeBytes int // accounted storage, matching Summary.SizeBytes
}

// K returns the lattice level: the maximum stored pattern size.
func (f *Frozen) K() int { return f.k }

// Dict returns the label dictionary the snapshot is keyed against.
func (f *Frozen) Dict() *labeltree.Dict { return f.dict }

// Pruned reports whether the summary this snapshot was taken from had
// entries removed by Filter.
func (f *Frozen) Pruned() bool { return f.pruned }

// Len reports the number of stored patterns.
func (f *Frozen) Len() int { return len(f.counts) }

// SizeBytes returns the accounted storage size (8 bytes of count plus 5
// bytes per node, the same accounting as Summary.SizeBytes).
func (f *Frozen) SizeBytes() int { return f.sizeBytes }

// ResidentBytes reports the actual bytes the snapshot keeps resident:
// arena, offsets, counts, and the open-addressing table.
func (f *Frozen) ResidentBytes() int {
	return len(f.arena) + 4*len(f.offs) + 8*len(f.counts) + 4*len(f.table)
}

// Count returns the stored count for p and whether p is present.
func (f *Frozen) Count(p labeltree.Pattern) (int64, bool) {
	return f.CountKey(p.Key())
}

// CountKey is Count for a precomputed canonical key. It performs no
// allocations.
func (f *Frozen) CountKey(key labeltree.Key) (int64, bool) {
	if len(f.table) == 0 {
		return 0, false
	}
	s := string(key)
	for slot := uint32(hashKey(s)) & f.mask; ; slot = (slot + 1) & f.mask {
		idx := f.table[slot]
		if idx < 0 {
			return 0, false
		}
		if bytesEqString(f.arena[f.offs[idx]:f.offs[idx+1]], s) {
			return f.counts[idx], true
		}
	}
}

// Entries returns all entries of the given size in deterministic
// (canonical key) order, decoding patterns from their stored keys.
// size 0 means all sizes. Intended for inspection and tests, not the
// query path.
func (f *Frozen) Entries(size int) []Entry {
	var out []Entry
	for i := range f.counts {
		key := labeltree.Key(f.arena[f.offs[i]:f.offs[i+1]])
		p, err := labeltree.DecodeKey(key)
		if err != nil {
			panic(fmt.Sprintf("lattice: frozen arena holds undecodable key: %v", err))
		}
		if size == 0 || p.Size() == size {
			out = append(out, Entry{Pattern: p, Count: f.counts[i]})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if sa, sb := out[a].Pattern.Size(), out[b].Pattern.Size(); sa != sb {
			return sa < sb
		}
		return out[a].Pattern.Key() < out[b].Pattern.Key()
	})
	return out
}

// Freeze builds a read-optimized snapshot of s. The snapshot shares s's
// dictionary but none of its storage; mutating s afterwards does not
// affect the snapshot.
func Freeze(s *Summary) *Frozen {
	keys := make([]string, 0, len(s.entries))
	total := 0
	for k := range s.entries {
		keys = append(keys, string(k))
		total += len(k)
	}
	// Sorted keys give a deterministic arena layout: freezing equal
	// summaries yields byte-identical snapshots.
	sort.Strings(keys)
	f := &Frozen{
		k: s.k, dict: s.dict, pruned: s.pruned,
		arena:  make([]byte, 0, total),
		offs:   make([]uint32, 1, len(keys)+1),
		counts: make([]int64, 0, len(keys)),
	}
	for _, k := range keys {
		e := s.entries[labeltree.Key(k)]
		f.add([]byte(k), e.Count, e.Pattern.Size())
	}
	return f
}

// ReadFrozen deserializes a summary written by WriteTo straight into a
// frozen snapshot, interning labels into dict. It streams entries —
// peak memory is the snapshot itself plus one in-flight pattern — and
// accepts exactly the inputs Read accepts, yielding the same counts.
func ReadFrozen(r io.Reader, dict *labeltree.Dict) (*Frozen, error) {
	sr, err := newSummaryReader(r, dict)
	if err != nil {
		return nil, err
	}
	f := &Frozen{k: sr.k, dict: dict, pruned: sr.pruned}
	var keyBuf []byte
	for e := uint64(0); e < sr.nEntries; e++ {
		p, count, err := sr.next(e)
		if err != nil {
			return nil, err
		}
		keyBuf = p.AppendKey(keyBuf[:0])
		if len(f.arena)+len(keyBuf) > frozenArenaLimit {
			return nil, fmt.Errorf("lattice: frozen arena at entry %d: %w", e, ErrSnapshotTooLarge)
		}
		f.add(keyBuf, count, p.Size())
	}
	return f, nil
}

// add records an entry. A duplicate key (possible only in hand-crafted
// serialized input; WriteTo never emits one) overwrites the existing
// count — the same last-wins semantics as Summary.Add — and leaves no
// dead arena bytes.
func (f *Frozen) add(key []byte, count int64, size int) {
	if at := f.find(key); at >= 0 {
		f.counts[at] = count
		return
	}
	if len(f.offs) == 0 {
		f.offs = append(f.offs, 0)
	}
	f.arena = append(f.arena, key...)
	f.offs = append(f.offs, uint32(len(f.arena)))
	f.counts = append(f.counts, count)
	f.insert(int32(len(f.counts) - 1))
	f.sizeBytes += 8 + 5*size
}

// find returns the index of the entry holding key, or -1.
func (f *Frozen) find(key []byte) int32 {
	if len(f.table) == 0 {
		return -1
	}
	for slot := uint32(hashKey(key)) & f.mask; ; slot = (slot + 1) & f.mask {
		at := f.table[slot]
		if at < 0 {
			return -1
		}
		if bytesEq(f.arena[f.offs[at]:f.offs[at+1]], key) {
			return at
		}
	}
}

// insert places entry idx — whose key is distinct from every indexed
// key — into the index, growing the table to keep the load factor at or
// below 1/2. Rehashing reindexes all entries including idx.
func (f *Frozen) insert(idx int32) {
	if 2*len(f.counts) > len(f.table) {
		f.rehash()
		return
	}
	key := f.arena[f.offs[idx]:f.offs[idx+1]]
	slot := uint32(hashKey(key)) & f.mask
	for f.table[slot] >= 0 {
		slot = (slot + 1) & f.mask
	}
	f.table[slot] = idx
}

// rehash rebuilds the index at four times the current entry count
// (minimum 16 slots). All indexed keys are distinct, so reinsertion
// needs no equality checks.
func (f *Frozen) rehash() {
	n := 16
	for n < 4*len(f.counts) {
		n *= 2
	}
	f.table = make([]int32, n)
	for i := range f.table {
		f.table[i] = -1
	}
	f.mask = uint32(n - 1)
	for idx := range f.counts {
		key := f.arena[f.offs[idx]:f.offs[idx+1]]
		slot := uint32(hashKey(key)) & f.mask
		for f.table[slot] >= 0 {
			slot = (slot + 1) & f.mask
		}
		f.table[slot] = int32(idx)
	}
}

// hashKey is a multiply-xor hash over 8-byte chunks, generic over both
// key representations so neither the build path ([]byte spans) nor the
// lookup path (Key strings) converts. Chunked loads matter: canonical
// keys are 5-30 bytes, and a byte-at-a-time FNV loop costs more than the
// probe it feeds. The length seeds the hash, so zero-padding the final
// partial chunk cannot collide keys of different lengths; the final
// avalanche mixes high bits into the low bits the table mask keeps.
func hashKey[K ~string | ~[]byte](k K) uint64 {
	const m = 0x9E3779B97F4A7C15 // 2^64 / golden ratio, odd
	h := uint64(len(k))*m + 14695981039346656037
	i := 0
	for ; i+8 <= len(k); i += 8 {
		c := uint64(k[i]) | uint64(k[i+1])<<8 | uint64(k[i+2])<<16 | uint64(k[i+3])<<24 |
			uint64(k[i+4])<<32 | uint64(k[i+5])<<40 | uint64(k[i+6])<<48 | uint64(k[i+7])<<56
		h = (h ^ c) * m
	}
	var c uint64
	for j := 0; i < len(k); i, j = i+1, j+8 {
		c |= uint64(k[i]) << j
	}
	h = (h ^ c) * m
	h ^= h >> 32
	h *= m
	h ^= h >> 29
	return h
}

// bytesEqString compares a byte span to a string. The conversion inside
// a comparison does not allocate — the compiler lowers it to a direct
// memory comparison (verified by TestFrozenLookupAllocs).
func bytesEqString(b []byte, s string) bool {
	return string(b) == s
}

func bytesEq(a, b []byte) bool {
	return bytes.Equal(a, b)
}
