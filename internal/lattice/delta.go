package lattice

import "treelattice/internal/labeltree"

// Delta is a small mutable-by-replacement overlay over an immutable base
// summary: the counts of documents ingested since the last refreeze.
// A Delta value is itself immutable — Apply and Subtract return new
// Deltas sharing nothing mutable with the old one — so readers may keep
// using a Delta concurrently with writers publishing its successor.
// That copy-on-write discipline is what lets the epoch-swap serving
// path hand out (base + delta) views without any read-side locking;
// the delta stays small (refreeze watermarks bound it), so the clone
// per ingest is cheap.
type Delta struct {
	sum  *Summary
	docs int
}

// NewDelta returns an empty delta at lattice level k over dict.
func NewDelta(k int, dict *labeltree.Dict) *Delta {
	return &Delta{sum: New(k, dict)}
}

// Apply folds one document's mined counts into the delta, returning the
// successor delta. The receiver is unchanged and stays valid for
// concurrent readers.
func (d *Delta) Apply(inc *Summary) (*Delta, error) {
	next := d.sum.Clone()
	if err := next.Merge(inc); err != nil {
		return nil, err
	}
	return &Delta{sum: next, docs: d.docs + 1}, nil
}

// Subtract removes a previously cut delta's counts — the refreeze path:
// cut was folded into a new base, so the successor delta keeps only
// what arrived after the cut. Counts going negative (cut was not a
// prefix of d) are an error.
func (d *Delta) Subtract(cut *Delta) (*Delta, error) {
	next := d.sum.Clone()
	for k, e := range cut.sum.entries {
		if err := next.AddCountKeyed(k, e.Pattern, -e.Count); err != nil {
			return nil, err
		}
	}
	docs := d.docs - cut.docs
	if docs < 0 {
		docs = 0
	}
	return &Delta{sum: next, docs: docs}, nil
}

// Docs reports how many documents the delta holds.
func (d *Delta) Docs() int { return d.docs }

// Empty reports whether the delta holds no documents and no counts.
func (d *Delta) Empty() bool { return d.docs == 0 && d.sum.Len() == 0 }

// Len reports the number of distinct patterns in the delta.
func (d *Delta) Len() int { return d.sum.Len() }

// SizeBytes is the accounted storage size of the delta's counts — the
// figure the ingest watermarks meter.
func (d *Delta) SizeBytes() int { return d.sum.SizeBytes() }

// Summary exposes the delta's counts as a read-only lattice summary
// (callers must not mutate it).
func (d *Delta) Summary() *Summary { return d.sum }

// estimate.Store surface, by delegation: a Delta overlays a base store
// through an additive merge at the count level.

// Count returns the delta's stored count for p.
func (d *Delta) Count(p labeltree.Pattern) (int64, bool) { return d.sum.Count(p) }

// CountKey is Count for a precomputed canonical key.
func (d *Delta) CountKey(key labeltree.Key) (int64, bool) { return d.sum.CountKey(key) }

// K returns the lattice level.
func (d *Delta) K() int { return d.sum.K() }

// Pruned always reports false: deltas are mined complete, never pruned.
func (d *Delta) Pruned() bool { return false }

// Clone returns an independent copy of the summary: same counts, same
// dictionary, separate storage. The pruned mark carries over.
func (s *Summary) Clone() *Summary {
	out := New(s.k, s.dict)
	out.pruned = s.pruned
	for k, e := range s.entries {
		out.entries[k] = e
	}
	return out
}
