package lattice

import (
	"testing"

	"treelattice/internal/labeltree"
)

// incOf builds a one-document increment summary from (pattern, count)
// pairs.
func incOf(t *testing.T, d *labeltree.Dict, k int, pairs map[string]int64) *Summary {
	t.Helper()
	s := New(k, d)
	for src, n := range pairs {
		p := labeltree.MustParsePattern(src, d)
		if err := s.Add(p, n); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestDeltaApplyIsCopyOnWrite(t *testing.T) {
	d := labeltree.NewDict()
	d0 := NewDelta(4, d)
	d1, err := d0.Apply(incOf(t, d, 4, map[string]int64{"a": 3, "a(b)": 2}))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d1.Apply(incOf(t, d, 4, map[string]int64{"a": 1, "c": 5}))
	if err != nil {
		t.Fatal(err)
	}
	if !d0.Empty() || d0.Len() != 0 {
		t.Fatal("Apply mutated the receiver")
	}
	if d1.Docs() != 1 || d2.Docs() != 2 {
		t.Fatalf("docs = %d, %d", d1.Docs(), d2.Docs())
	}
	a := labeltree.MustParsePattern("a", d)
	if got, _ := d1.Count(a); got != 3 {
		t.Fatalf("d1 count(a) = %d", got)
	}
	if got, _ := d2.Count(a); got != 4 {
		t.Fatalf("d2 count(a) = %d", got)
	}
	if got, ok := d2.CountKey(labeltree.MustParsePattern("c", d).Key()); !ok || got != 5 {
		t.Fatalf("d2 count(c) = %d,%v", got, ok)
	}
}

// TestDeltaSubtract: after a refreeze cut is folded into the base,
// Subtract leaves exactly the post-cut counts; a full cut leaves an
// empty delta.
func TestDeltaSubtract(t *testing.T) {
	d := labeltree.NewDict()
	cur := NewDelta(4, d)
	var err error
	for _, inc := range []map[string]int64{
		{"a": 3, "a(b)": 2},
		{"a": 1, "c": 5},
		{"c": 2},
	} {
		if cur, err = cur.Apply(incOf(t, d, 4, inc)); err != nil {
			t.Fatal(err)
		}
	}
	cut := NewDelta(4, d)
	for _, inc := range []map[string]int64{
		{"a": 3, "a(b)": 2},
		{"a": 1, "c": 5},
	} {
		if cut, err = cut.Apply(incOf(t, d, 4, inc)); err != nil {
			t.Fatal(err)
		}
	}
	rest, err := cur.Subtract(cut)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Docs() != 1 || rest.Len() != 1 {
		t.Fatalf("rest docs=%d len=%d", rest.Docs(), rest.Len())
	}
	if got, _ := rest.Count(labeltree.MustParsePattern("c", d)); got != 2 {
		t.Fatalf("rest count(c) = %d", got)
	}
	if _, ok := rest.Count(labeltree.MustParsePattern("a", d)); ok {
		t.Fatal("fully folded count survived the subtract")
	}
	empty, err := rest.Subtract(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Empty() {
		t.Fatal("subtracting a delta from itself is not empty")
	}
	// Subtracting something that was never applied must error, not go
	// negative silently.
	bogus, _ := NewDelta(4, d).Apply(incOf(t, d, 4, map[string]int64{"zzz": 99}))
	if _, err := rest.Subtract(bogus); err == nil {
		t.Fatal("negative subtract accepted")
	}
}

func TestSummaryClone(t *testing.T) {
	d := labeltree.NewDict()
	s := incOf(t, d, 4, map[string]int64{"a": 1, "a(b,c)": 7})
	c := s.Clone()
	if c.K() != s.K() || c.Len() != s.Len() {
		t.Fatalf("clone shape: K=%d len=%d", c.K(), c.Len())
	}
	if err := c.AddCount(labeltree.MustParsePattern("a", d), 10); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Count(labeltree.MustParsePattern("a", d)); got != 1 {
		t.Fatal("clone shares storage with the original")
	}
}

// FuzzDeltaMerge drives a random op sequence through the copy-on-write
// Delta chain and a plain reference map in lockstep: every byte pair of
// the input is one document add (or, on the refreeze cadence, a cut +
// subtract), and after the sequence the delta's counts must equal the
// reference exactly.
func FuzzDeltaMerge(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7, 7, 7})
	f.Add([]byte{0xff, 0x00, 0x10, 0x80, 0x3c})
	f.Add([]byte("refreeze"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dict := labeltree.NewDict()
		pats := []labeltree.Pattern{
			labeltree.MustParsePattern("a", dict),
			labeltree.MustParsePattern("b", dict),
			labeltree.MustParsePattern("a(b)", dict),
			labeltree.MustParsePattern("a(b,c)", dict),
			labeltree.MustParsePattern("b(c(d))", dict),
			labeltree.MustParsePattern("a(b(c),d)", dict),
		}
		ref := make(map[labeltree.Key]int64)
		cur := NewDelta(4, dict)
		refDocs := 0
		for i := 0; i+1 < len(data); i += 2 {
			if data[i]%5 == 4 && !cur.Empty() {
				// Refreeze: fold everything seen so far, subtract the cut.
				rest, err := cur.Subtract(cur) // cut == cur: everything folds
				if err != nil {
					t.Fatalf("op %d: subtract: %v", i, err)
				}
				if !rest.Empty() {
					t.Fatalf("op %d: full cut left %d entries, %d docs", i, rest.Len(), rest.Docs())
				}
				cur = rest
				ref = make(map[labeltree.Key]int64)
				refDocs = 0
				continue
			}
			// One document: up to three pattern bumps derived from the pair.
			inc := New(4, dict)
			for j := 0; j < 3; j++ {
				p := pats[int(data[i]+byte(j)*7)%len(pats)]
				n := int64(data[i+1]%13) + 1
				if err := inc.AddCount(p, n); err != nil {
					t.Fatal(err)
				}
				ref[p.Key()] += n
			}
			next, err := cur.Apply(inc)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
			refDocs++
		}
		if cur.Docs() != refDocs {
			t.Fatalf("docs = %d, want %d", cur.Docs(), refDocs)
		}
		if cur.Len() != len(ref) {
			t.Fatalf("len = %d, want %d", cur.Len(), len(ref))
		}
		for key, want := range ref {
			if got, ok := cur.CountKey(key); !ok || got != want {
				t.Fatalf("count(%q) = %d,%v want %d", key, got, ok, want)
			}
		}
	})
}
