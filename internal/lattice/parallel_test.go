package lattice

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"treelattice/internal/labeltree"
)

// reduceShards builds n shards with overlapping pattern sets so the merge
// has both hit and miss cases.
func reduceShards(t *testing.T, d *labeltree.Dict, a, b labeltree.LabelID, n int) []*Summary {
	t.Helper()
	shards := make([]*Summary, n)
	for i := range shards {
		s := New(4, d)
		if err := s.Add(labeltree.SingleNode(a), int64(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(labeltree.PathPattern(a, b), int64(2*i+1)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Add(labeltree.PathPattern(a, b, a), 3); err != nil {
				t.Fatal(err)
			}
		}
		shards[i] = s
	}
	return shards
}

func TestReduceMatchesSequentialMerge(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", n, workers), func(t *testing.T) {
				d, a, b := twoLabels()

				seq := New(4, d)
				for _, sh := range reduceShards(t, d, a, b, n) {
					if err := seq.Merge(sh); err != nil {
						t.Fatal(err)
					}
				}

				got, err := Reduce(context.Background(), reduceShards(t, d, a, b, n), workers)
				if err != nil {
					t.Fatal(err)
				}
				var wantBuf, gotBuf bytes.Buffer
				if _, err := seq.WriteTo(&wantBuf); err != nil {
					t.Fatal(err)
				}
				if _, err := got.WriteTo(&gotBuf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
					t.Fatal("reduced summary differs from sequential merge")
				}
			})
		}
	}
}

func TestReduceErrors(t *testing.T) {
	d, a, _ := twoLabels()
	if _, err := Reduce(context.Background(), nil, 2); err == nil {
		t.Fatal("reduce of zero shards accepted")
	}

	mismatched := []*Summary{New(4, d), New(3, d)}
	if _, err := Reduce(context.Background(), mismatched, 2); err == nil {
		t.Fatal("reduce of mismatched K accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shards := []*Summary{New(4, d), New(4, d)}
	shards[0].Add(labeltree.SingleNode(a), 1)
	if _, err := Reduce(ctx, shards, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled reduce returned %v, want context.Canceled", err)
	}
}
