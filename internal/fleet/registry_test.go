package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"treelattice/internal/core"
	"treelattice/internal/fleet"
)

// writeTenantDir materializes a tenant under root: a single summary.tlat
// when shards == 1, else one shard snapshot per non-empty shard group.
func writeTenantDir(t *testing.T, root, name string, seed int64, shards int) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, trees, names := testCorpus(t, seed, 6, 16)
	opts := core.BuildOptions{K: 3}
	write := func(path string, sum *core.Summary) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := sum.WriteTo(f); err != nil {
			t.Fatal(err)
		}
	}
	if shards == 1 {
		sum, err := core.BuildForestContext(context.Background(), trees, opts)
		if err != nil {
			t.Fatal(err)
		}
		write(filepath.Join(dir, fleet.SummaryFile), sum)
		return
	}
	for i, sum := range buildShards(t, trees, names, shards, opts) {
		write(filepath.Join(dir, fleet.ShardFile(i)), sum)
	}
}

func TestLoadTenantSharded(t *testing.T) {
	root := t.TempDir()
	writeTenantDir(t, root, "acme", 21, 3)
	tn, err := fleet.LoadTenant(filepath.Join(root, "acme"), "acme")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Shards < 2 || tn.Gather == nil {
		t.Fatalf("want a sharded tenant, got %d shards (gather %v)", tn.Shards, tn.Gather)
	}
	q, err := tn.Summary.ParseQuery("l0(l1)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Estimate(context.Background(), q, core.MethodFixSized, fleet.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsAnswered != tn.Shards || res.Partial {
		t.Fatalf("healthy sharded tenant answered %+v", res)
	}
	if tn.Summary.Mutable() {
		t.Fatal("loaded tenant should be frozen read-only")
	}
}

func TestRegistryLoadEvictPin(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < 5; i++ {
		writeTenantDir(t, root, fmt.Sprintf("t%d", i), int64(i), 1)
	}
	r := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResident: 2})

	// A pinned install never ages out.
	def := fleet.NewTenant("default", mustSummary(t, 99))
	if err := r.Install(def); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("t%d", i)
		tn, err := r.Acquire(ctx, name)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		if tn.Name != name {
			t.Fatalf("Acquire(%s) returned %q", name, tn.Name)
		}
	}
	st := r.Stats()
	if st.Loads != 5 || st.Evictions != 3 {
		t.Fatalf("want 5 loads, 3 evictions, got %+v", st)
	}
	if st.Resident != 3 || st.Pinned != 1 { // 2 LRU slots + pinned default
		t.Fatalf("want 3 resident (1 pinned), got %+v", st)
	}
	if !r.Loaded("default") {
		t.Fatal("pinned default evicted")
	}
	// Re-acquiring an evicted tenant reloads it.
	if _, err := r.Acquire(ctx, "t0"); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Loads != 6 {
		t.Fatalf("re-acquire did not reload: %+v", r.Stats())
	}

	if _, err := r.Acquire(ctx, "nosuch"); !errors.Is(err, fleet.ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
	if _, err := r.Acquire(ctx, "../escape"); !errors.Is(err, fleet.ErrBadName) {
		t.Fatalf("want ErrBadName, got %v", err)
	}
	if r.Loaded("nosuch") {
		t.Fatal("failed load left a resident slot")
	}
}

func mustSummary(t *testing.T, seed int64) *core.Summary {
	t.Helper()
	_, trees, _ := testCorpus(t, seed, 4, 12)
	sum, err := core.BuildForestContext(context.Background(), trees, core.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestRegistryConcurrent hammers a small-LRU registry with concurrent
// acquires and estimates: tenants load, evict, and reload under traffic
// while in-flight requests keep using the references they hold. Run
// under -race by make check.
func TestRegistryConcurrent(t *testing.T) {
	root := t.TempDir()
	const tenants = 6
	for i := 0; i < tenants; i++ {
		shards := 1 + i%3
		writeTenantDir(t, root, fmt.Sprintf("t%d", i), int64(i), shards)
	}
	r := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResident: 2})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("t%d", rng.Intn(tenants))
				tn, err := r.Acquire(ctx, name)
				if err != nil {
					t.Errorf("Acquire(%s): %v", name, err)
					return
				}
				q, err := tn.Summary.ParseQuery("l0(l1)")
				if err != nil {
					t.Errorf("parse on %s: %v", name, err)
					return
				}
				if _, err := tn.Estimate(ctx, q, core.MethodFixSized, fleet.EstimateOptions{}); err != nil {
					t.Errorf("estimate on %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := r.Stats(); st.Resident > 2 {
		t.Fatalf("resident count %d exceeds MaxResident", st.Resident)
	}
}
