package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"treelattice/internal/core"
	"treelattice/internal/fleet"
)

// writeTenantDir materializes a tenant under root: a single summary.tlat
// when shards == 1, else one shard snapshot per non-empty shard group.
func writeTenantDir(t *testing.T, root, name string, seed int64, shards int) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, trees, names := testCorpus(t, seed, 6, 16)
	opts := core.BuildOptions{K: 3}
	write := func(path string, sum *core.Summary) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := sum.WriteTo(f); err != nil {
			t.Fatal(err)
		}
	}
	if shards == 1 {
		sum, err := core.BuildForestContext(context.Background(), trees, opts)
		if err != nil {
			t.Fatal(err)
		}
		write(filepath.Join(dir, fleet.SummaryFile), sum)
		return
	}
	for i, sum := range buildShards(t, trees, names, shards, opts) {
		write(filepath.Join(dir, fleet.ShardFile(i)), sum)
	}
}

func TestLoadTenantSharded(t *testing.T) {
	root := t.TempDir()
	writeTenantDir(t, root, "acme", 21, 3)
	tn, err := fleet.LoadTenant(filepath.Join(root, "acme"), "acme")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Shards < 2 || tn.Gather == nil {
		t.Fatalf("want a sharded tenant, got %d shards (gather %v)", tn.Shards, tn.Gather)
	}
	q, err := tn.Summary.ParseQuery("l0(l1)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Estimate(context.Background(), q, core.MethodFixSized, fleet.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsAnswered != tn.Shards || res.Partial {
		t.Fatalf("healthy sharded tenant answered %+v", res)
	}
	if tn.Summary.Mutable() {
		t.Fatal("loaded tenant should be frozen read-only")
	}
}

func TestRegistryLoadEvictPin(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < 5; i++ {
		writeTenantDir(t, root, fmt.Sprintf("t%d", i), int64(i), 1)
	}
	r := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResident: 2})

	// A pinned install never ages out.
	def := fleet.NewTenant("default", mustSummary(t, 99))
	if err := r.Install(def); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("t%d", i)
		tn, err := r.Acquire(ctx, name)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		if tn.Name != name {
			t.Fatalf("Acquire(%s) returned %q", name, tn.Name)
		}
	}
	st := r.Stats()
	if st.Loads != 5 || st.Evictions != 3 {
		t.Fatalf("want 5 loads, 3 evictions, got %+v", st)
	}
	if st.Resident != 3 || st.Pinned != 1 { // 2 LRU slots + pinned default
		t.Fatalf("want 3 resident (1 pinned), got %+v", st)
	}
	if !r.Loaded("default") {
		t.Fatal("pinned default evicted")
	}
	// Re-acquiring an evicted tenant reloads it.
	if _, err := r.Acquire(ctx, "t0"); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Loads != 6 {
		t.Fatalf("re-acquire did not reload: %+v", r.Stats())
	}

	if _, err := r.Acquire(ctx, "nosuch"); !errors.Is(err, fleet.ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
	if _, err := r.Acquire(ctx, "../escape"); !errors.Is(err, fleet.ErrBadName) {
		t.Fatalf("want ErrBadName, got %v", err)
	}
	if r.Loaded("nosuch") {
		t.Fatal("failed load left a resident slot")
	}
}

// writeCompressedTenantDir is writeTenantDir with every snapshot in the
// compressed TLCZ form — same .tlat filenames, loaders detect by magic.
func writeCompressedTenantDir(t *testing.T, root, name string, seed int64, shards int) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, trees, names := testCorpus(t, seed, 6, 16)
	opts := core.BuildOptions{K: 3}
	write := func(path string, sum *core.Summary) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := sum.WriteCompressed(f); err != nil {
			t.Fatal(err)
		}
	}
	if shards == 1 {
		sum, err := core.BuildForestContext(context.Background(), trees, opts)
		if err != nil {
			t.Fatal(err)
		}
		write(filepath.Join(dir, fleet.SummaryFile), sum)
		return
	}
	for i, sum := range buildShards(t, trees, names, shards, opts) {
		write(filepath.Join(dir, fleet.ShardFile(i)), sum)
	}
}

// TestLoadTenantCompressed: LoadTenant must detect compressed snapshots
// by magic — same filenames as frozen ones — and answer estimates
// bit-identically to the frozen-loaded twin of the same tenant, at a
// smaller resident footprint.
func TestLoadTenantCompressed(t *testing.T) {
	root := t.TempDir()
	for _, shards := range []int{1, 3} {
		frozenName := fmt.Sprintf("froz%d", shards)
		compName := fmt.Sprintf("comp%d", shards)
		writeTenantDir(t, root, frozenName, 33, shards)
		writeCompressedTenantDir(t, root, compName, 33, shards)
		froz, err := fleet.LoadTenant(filepath.Join(root, frozenName), frozenName)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := fleet.LoadTenant(filepath.Join(root, compName), compName)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Shards != shards || comp.Shards != froz.Shards {
			t.Fatalf("shards=%d: loaded %d compressed / %d frozen shards",
				shards, comp.Shards, froz.Shards)
		}
		if shards == 1 {
			if got := comp.StoreKind(); got != "compressed" {
				t.Fatalf("compressed tenant StoreKind() = %q", got)
			}
			if got := froz.StoreKind(); got != "frozen" {
				t.Fatalf("frozen tenant StoreKind() = %q", got)
			}
		}
		if comp.Summary.Mutable() {
			t.Fatal("compressed tenant must be read-only")
		}
		if cb, fb := comp.ResidentBytes(), froz.ResidentBytes(); cb <= 0 || cb >= fb {
			t.Fatalf("shards=%d: compressed resident %d vs frozen %d", shards, cb, fb)
		}
		for _, qs := range []string{"l0(l1)", "l1(l2,l3)", "l0(l1(l2))"} {
			fq, err := froz.Summary.ParseQuery(qs)
			if err != nil {
				t.Fatal(err)
			}
			cq, err := comp.Summary.ParseQuery(qs)
			if err != nil {
				t.Fatalf("parse %q against compressed tenant: %v", qs, err)
			}
			fr, err := froz.Estimate(context.Background(), fq, core.MethodRecursiveVoting, fleet.EstimateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cr, err := comp.Estimate(context.Background(), cq, core.MethodRecursiveVoting, fleet.EstimateOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if cr.Estimate != fr.Estimate {
				t.Errorf("shards=%d query %q: compressed %v != frozen %v",
					shards, qs, cr.Estimate, fr.Estimate)
			}
		}
	}
}

// TestRegistryByteBudget: MaxResidentBytes must evict LRU tenants once
// the summed footprint passes the budget — but never the newest load
// itself, so an oversized tenant still serves.
func TestRegistryByteBudget(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < 3; i++ {
		writeTenantDir(t, root, fmt.Sprintf("t%d", i), int64(i), 1)
	}
	probe := fleet.NewRegistry(fleet.RegistryOptions{Root: root})
	ctx := context.Background()
	tn, err := probe.Acquire(ctx, "t0")
	if err != nil {
		t.Fatal(err)
	}
	one := int64(tn.ResidentBytes())
	if one <= 0 {
		t.Fatalf("tenant resident bytes = %d", one)
	}

	// Budget below a single tenant: each load evicts the previous one,
	// but the tenant just loaded always stays resident.
	r := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResidentBytes: one / 2})
	for i := 0; i < 3; i++ {
		if _, err := r.Acquire(ctx, fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
		if st := r.Stats(); st.Resident != 1 {
			t.Fatalf("after load %d: %d resident under tiny budget", i, st.Resident)
		}
	}
	st := r.Stats()
	if st.Evictions != 2 {
		t.Fatalf("want 2 byte-budget evictions, got %+v", st)
	}
	if st.ResidentBytes <= 0 || st.MaxResidentBytes != one/2 {
		t.Fatalf("stats bytes not reported: %+v", st)
	}

	// Budget fitting roughly two tenants: the third load evicts only the
	// least recently used one.
	r2 := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResidentBytes: 2*one + one/2})
	for i := 0; i < 3; i++ {
		if _, err := r2.Acquire(ctx, fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := r2.Stats(); st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("two-tenant budget: %+v", st)
	}
	if r2.Loaded("t0") {
		t.Fatal("LRU tenant t0 survived the byte budget")
	}
}

func mustSummary(t *testing.T, seed int64) *core.Summary {
	t.Helper()
	_, trees, _ := testCorpus(t, seed, 4, 12)
	sum, err := core.BuildForestContext(context.Background(), trees, core.BuildOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestRegistryConcurrent hammers a small-LRU registry with concurrent
// acquires and estimates: tenants load, evict, and reload under traffic
// while in-flight requests keep using the references they hold. Run
// under -race by make check.
func TestRegistryConcurrent(t *testing.T) {
	root := t.TempDir()
	const tenants = 6
	for i := 0; i < tenants; i++ {
		shards := 1 + i%3
		writeTenantDir(t, root, fmt.Sprintf("t%d", i), int64(i), shards)
	}
	r := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResident: 2})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("t%d", rng.Intn(tenants))
				tn, err := r.Acquire(ctx, name)
				if err != nil {
					t.Errorf("Acquire(%s): %v", name, err)
					return
				}
				q, err := tn.Summary.ParseQuery("l0(l1)")
				if err != nil {
					t.Errorf("parse on %s: %v", name, err)
					return
				}
				if _, err := tn.Estimate(ctx, q, core.MethodFixSized, fleet.EstimateOptions{}); err != nil {
					t.Errorf("estimate on %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := r.Stats(); st.Resident > 2 {
		t.Fatalf("resident count %d exceeds MaxResident", st.Resident)
	}
}

// TestRegistryReload: Reload swaps in freshly loaded snapshots without
// evicting the serving copy — the old tenant keeps answering for
// requests already holding it, the generation advances so epoch-less
// cache scopes roll over, and pinned installs refuse to be reloaded.
func TestRegistryReload(t *testing.T) {
	root := t.TempDir()
	writeTenantDir(t, root, "acme", 7, 1)
	r := fleet.NewRegistry(fleet.RegistryOptions{Root: root, MaxResident: 2})
	ctx := context.Background()

	old, err := r.Acquire(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	gen := r.Generation("acme")
	if gen == 0 {
		t.Fatal("generation still zero after load")
	}

	// New snapshots land on disk (a refrozen replica published them),
	// then the fleet picks them up.
	writeTenantDir(t, root, "acme", 8, 1)
	fresh, err := r.Reload(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == old {
		t.Fatal("Reload returned the old tenant")
	}
	if g := r.Generation("acme"); g != gen+1 {
		t.Fatalf("generation = %d, want %d", g, gen+1)
	}
	if st := r.Stats(); st.Reloads != 1 {
		t.Fatalf("stats reloads = %d, want 1", st.Reloads)
	}

	// The displaced tenant is immutable and still serves.
	q, err := old.Summary.ParseQuery("l0(l1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Estimate(ctx, q, core.MethodFixSized, fleet.EstimateOptions{}); err != nil {
		t.Fatalf("old tenant after reload: %v", err)
	}
	got, err := r.Acquire(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Fatal("Acquire after reload did not return the fresh tenant")
	}

	// Pinned tenants are operator-installed, not snapshot-backed.
	if err := r.Install(fleet.NewTenant("default", mustSummary(t, 99))); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(ctx, "default"); err == nil {
		t.Fatal("reloading a pinned tenant should fail")
	}
	if _, err := r.Reload(ctx, "nosuch"); !errors.Is(err, fleet.ErrUnknownTenant) {
		t.Fatalf("want ErrUnknownTenant, got %v", err)
	}
}
