package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// MaxShards bounds the shard count of one tenant. Gather caches combined
// summaries per responder set, encoded as a bitmask in a uint64.
const MaxShards = 64

// SummaryFile is the snapshot filename of an unsharded tenant.
const SummaryFile = "summary.tlat"

// AssignShard deterministically maps a document name to one of n shards
// using FNV-1a over the name. Every builder that agrees on n places every
// document identically — shard builds are reproducible and can run
// independently on disjoint corpus slices.
func AssignShard(doc string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(doc); i++ {
		h ^= uint64(doc[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// ShardFile names shard i's snapshot file ("shard-0003.tlat"). The
// fixed-width index keeps lexicographic and numeric order identical, so
// a sorted directory listing is the shard order.
func ShardFile(i int) string {
	return fmt.Sprintf("shard-%04d.tlat", i)
}

// shardFiles filters and sorts a directory listing down to shard
// snapshot files.
func shardFiles(names []string) []string {
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, "shard-") && strings.HasSuffix(n, ".tlat") {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
