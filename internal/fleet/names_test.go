package fleet_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"treelattice/internal/fleet"
)

func TestValidateName(t *testing.T) {
	valid := []string{
		"a", "acme", "tenant-1", "t.one", "a_b-c.d", "0", "x0",
		strings.Repeat("a", fleet.MaxNameLen),
	}
	for _, name := range valid {
		if err := fleet.ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{
		"", ".", "..", "a..b", "../etc", "a/b", `a\b`, "a b", "Acme",
		"-lead", "trail-", ".hidden", "dot.", "_x", "x_",
		"a\x00b", "naïve", "a\nb",
		strings.Repeat("a", fleet.MaxNameLen+1),
	}
	for _, name := range invalid {
		if err := fleet.ValidateName(name); !errors.Is(err, fleet.ErrBadName) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadName", name, err)
		}
	}
}

// FuzzTenantName holds the safety property the validator exists for:
// any accepted name is a single well-behaved path component — cleaning
// it changes nothing, it never escapes its directory, and it stays
// within the documented grammar.
func FuzzTenantName(f *testing.F) {
	for _, seed := range []string{
		"", "a", "acme", "..", "../../etc/passwd", "a/b", `a\b`,
		"tenant-1", "t.one", ".", "-", "_", "a..b", "A", "a\x00",
		strings.Repeat("x", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		if err := fleet.ValidateName(name); err != nil {
			return
		}
		if len(name) == 0 || len(name) > fleet.MaxNameLen {
			t.Fatalf("accepted name %q has length %d", name, len(name))
		}
		if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
			t.Fatalf("accepted name %q can traverse paths", name)
		}
		if filepath.Clean(name) != name || filepath.IsAbs(name) {
			t.Fatalf("accepted name %q is not a clean relative path component", name)
		}
		if filepath.Join("root", name) != "root"+string(filepath.Separator)+name {
			t.Fatalf("accepted name %q does not join as a plain component", name)
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-'
			if !ok {
				t.Fatalf("accepted name %q contains byte %q outside the grammar", name, c)
			}
		}
	})
}
