package fleet

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// ErrUnknownTenant reports a tenant name with no directory (or no
// snapshots) under the fleet root.
var ErrUnknownTenant = errors.New("fleet: unknown tenant")

// RegistryOptions configures a tenant registry.
type RegistryOptions struct {
	// Root is the directory holding one subdirectory per tenant (see
	// LoadTenant for the layout). Empty means no disk-backed tenants:
	// only Install'ed ones resolve.
	Root string
	// MaxResident bounds how many disk-loaded tenants stay resident at
	// once (default 8). Install'ed tenants are pinned and do not count.
	// Evicting a tenant drops the registry's reference; summaries are
	// immutable, so estimates already holding one are unaffected.
	MaxResident int
	// MaxResidentBytes additionally bounds the summed ResidentBytes of
	// disk-loaded tenants (0 = no byte budget). When a load pushes the
	// total past the budget, least-recently-used tenants are evicted
	// until it fits — except the newest load itself, which always stays:
	// a single tenant larger than the budget still serves, it just
	// evicts everything else.
	MaxResidentBytes int64
	// Logf receives load/evict log lines; nil means no logging.
	Logf func(format string, args ...any)
}

// Registry resolves tenant names to resident tenants, loading frozen
// snapshots lazily and keeping an LRU of resident disk-loaded tenants.
// Loads are single-flight: concurrent Acquires of a cold tenant share
// one load.
type Registry struct {
	opts RegistryOptions

	mu       sync.Mutex
	resident map[string]*slot
	lru      *list.List // unpinned loaded slots, front = most recent
	gens     map[string]uint64

	loads      int64
	evictions  int64
	reloads    int64
	totalBytes int64 // summed bytes of lru-listed (unpinned, loaded) slots
}

// slot tracks one tenant through loading and residence. ready closes
// when the load completes; elem is the slot's LRU position (nil while
// loading or pinned); bytes is the tenant's resident footprint,
// recorded at load so eviction accounting needs no re-measuring.
type slot struct {
	name   string
	pinned bool
	ready  chan struct{}
	tenant *Tenant
	err    error
	elem   *list.Element
	bytes  int64
}

// NewRegistry returns an empty registry over opts.Root.
func NewRegistry(opts RegistryOptions) *Registry {
	if opts.MaxResident <= 0 {
		opts.MaxResident = 8
	}
	return &Registry{
		opts:     opts,
		resident: make(map[string]*slot),
		lru:      list.New(),
		gens:     make(map[string]uint64),
	}
}

// Install pins a preloaded tenant into the registry — the path by which
// the default tenant (the live corpus behind the legacy routes) becomes
// addressable by name. Pinned tenants never age out of the LRU. The
// tenant's name must validate.
func (r *Registry) Install(t *Tenant) error {
	if err := ValidateName(t.Name); err != nil {
		return err
	}
	ready := make(chan struct{})
	close(ready)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.resident[t.Name]; ok && old.elem != nil {
		r.lru.Remove(old.elem)
		r.totalBytes -= old.bytes
	}
	r.resident[t.Name] = &slot{
		name: t.Name, pinned: true, ready: ready, tenant: t,
		bytes: int64(t.ResidentBytes()),
	}
	r.gens[t.Name]++
	return nil
}

// Acquire resolves name to a resident tenant, loading its snapshots on
// first use. The returned tenant stays valid for the caller's whole
// request even if the registry evicts it concurrently (tenants are
// immutable; eviction only drops the registry's reference). Unknown
// names fail with ErrUnknownTenant, invalid ones with ErrBadName.
func (r *Registry) Acquire(ctx context.Context, name string) (*Tenant, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if s, ok := r.resident[name]; ok {
		if s.elem != nil {
			r.lru.MoveToFront(s.elem)
		}
		r.mu.Unlock()
		select {
		case <-s.ready:
			return s.tenant, s.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.opts.Root == "" {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	s := &slot{name: name, ready: make(chan struct{})}
	r.resident[name] = s
	r.loads++
	r.mu.Unlock()

	t, err := LoadTenant(r.tenantDir(name), name)
	r.mu.Lock()
	s.tenant, s.err = t, err
	if err != nil {
		// Failed loads do not stay resident: the next Acquire retries
		// (the tenant may appear on disk later). Identity-checked so a
		// concurrent Reload's fresh slot is never deleted by mistake.
		if r.resident[name] == s {
			delete(r.resident, name)
		}
	} else {
		s.bytes = int64(t.ResidentBytes())
		r.totalBytes += s.bytes
		s.elem = r.lru.PushFront(s)
		r.gens[name]++
		r.evictLocked()
		r.logf("fleet: loaded tenant %q (%d shards, %s backend, %d resident bytes)",
			name, t.Shards, t.StoreKind(), s.bytes)
	}
	r.mu.Unlock()
	close(s.ready)
	return t, err
}

// Reload replaces name's resident tenant with a fresh load of its
// on-disk snapshots — the fleet half of zero-downtime ingest: a replica
// refreezes and publishes new snapshot files, and the serving fleet
// picks them up without evicting the serving copy. The load runs
// outside the registry lock; the swap is a map-entry replacement, so
// requests already holding the old tenant finish against it (tenants
// are immutable) while new Acquires see the fresh one. The tenant's
// generation counter advances on success.
func (r *Registry) Reload(ctx context.Context, name string) (*Tenant, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if r.opts.Root == "" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	for {
		r.mu.Lock()
		s, ok := r.resident[name]
		if ok && s.pinned {
			r.mu.Unlock()
			return nil, fmt.Errorf("fleet: tenant %q is pinned, cannot reload", name)
		}
		r.mu.Unlock()
		if !ok {
			break
		}
		// An in-flight load settles its own bookkeeping on this slot;
		// wait it out rather than racing the swap.
		select {
		case <-s.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		r.mu.Lock()
		same := r.resident[name] == s
		r.mu.Unlock()
		if same {
			break // load settled and the slot is still serving
		}
	}

	t, err := LoadTenant(r.tenantDir(name), name)
	if err != nil {
		return nil, err
	}
	ready := make(chan struct{})
	close(ready)
	s := &slot{name: name, ready: ready, tenant: t, bytes: int64(t.ResidentBytes())}
	r.mu.Lock()
	if old, ok := r.resident[name]; ok {
		if old.pinned {
			r.mu.Unlock()
			return nil, fmt.Errorf("fleet: tenant %q is pinned, cannot reload", name)
		}
		if old.elem != nil {
			r.lru.Remove(old.elem)
			r.totalBytes -= old.bytes
		}
	}
	r.resident[name] = s
	r.totalBytes += s.bytes
	s.elem = r.lru.PushFront(s)
	r.gens[name]++
	r.reloads++
	r.evictLocked()
	r.logf("fleet: reloaded tenant %q (generation %d, %d shards, %s backend, %d resident bytes)",
		name, r.gens[name], t.Shards, t.StoreKind(), s.bytes)
	r.mu.Unlock()
	return t, nil
}

// Generation reports how many times name has been installed, loaded, or
// reloaded — the cache-scope discriminator for non-epoch tenants, and
// the operator's way to confirm a reload took effect. Zero means never
// loaded. Generations survive eviction: a tenant that ages out and
// loads again continues its count.
func (r *Registry) Generation(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gens[name]
}

func (r *Registry) tenantDir(name string) string {
	return filepath.Join(r.opts.Root, name)
}

// evictLocked drops least-recently-used unpinned tenants while the
// count exceeds MaxResident or the summed resident bytes exceed
// MaxResidentBytes — but never the sole remaining one, so an oversized
// tenant still serves. Caller holds r.mu.
func (r *Registry) evictLocked() {
	overBudget := func() bool {
		return r.opts.MaxResidentBytes > 0 && r.totalBytes > r.opts.MaxResidentBytes
	}
	for r.lru.Len() > r.opts.MaxResident || (overBudget() && r.lru.Len() > 1) {
		e := r.lru.Back()
		s := e.Value.(*slot)
		r.lru.Remove(e)
		delete(r.resident, s.name)
		r.totalBytes -= s.bytes
		r.evictions++
		r.logf("fleet: evicted tenant %q (%d resident bytes)", s.name, s.bytes)
	}
}

func (r *Registry) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Peek returns a resident, fully loaded tenant without triggering a
// load or touching LRU order — the observability path's read.
func (r *Registry) Peek(name string) (*Tenant, bool) {
	r.mu.Lock()
	s, ok := r.resident[name]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-s.ready:
		return s.tenant, s.err == nil
	default:
		return nil, false
	}
}

// Loaded reports whether name is resident and loaded (not mid-load) —
// the readiness probe's question about the default tenant.
func (r *Registry) Loaded(name string) bool {
	r.mu.Lock()
	s, ok := r.resident[name]
	r.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-s.ready:
		return s.err == nil
	default:
		return false
	}
}

// Resident lists the resident tenant names, sorted.
func (r *Registry) Resident() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.resident))
	for name := range r.resident {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegistryStats is the registry's /v1/stats section. ResidentBytes
// sums the footprint of every loaded tenant, pinned included;
// MaxResidentBytes echoes the configured budget (0 = unlimited), which
// meters only the unpinned, disk-loaded portion.
type RegistryStats struct {
	Resident         int   `json:"resident"`
	Pinned           int   `json:"pinned"`
	Loads            int64 `json:"loads"`
	Evictions        int64 `json:"evictions"`
	Reloads          int64 `json:"reloads"`
	ResidentBytes    int64 `json:"resident_bytes"`
	MaxResidentBytes int64 `json:"max_resident_bytes,omitempty"`
}

// Stats snapshots residence and churn counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegistryStats{
		Resident: len(r.resident), Loads: r.loads, Evictions: r.evictions,
		Reloads: r.reloads, MaxResidentBytes: r.opts.MaxResidentBytes,
	}
	for _, s := range r.resident {
		if s.pinned {
			st.Pinned++
		}
		st.ResidentBytes += s.bytes
	}
	return st
}
