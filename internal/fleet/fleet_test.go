package fleet_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/fleet"
	"treelattice/internal/labeltree"
	"treelattice/internal/treetest"
)

// testCorpus builds a deterministic forest of nDocs random documents
// sharing one dictionary, with stable document names.
func testCorpus(t *testing.T, seed int64, nDocs, docSize int) (*labeltree.Dict, []*labeltree.Tree, []string) {
	t.Helper()
	dict, ids := treetest.Alphabet(8)
	rng := rand.New(rand.NewSource(seed))
	trees := make([]*labeltree.Tree, nDocs)
	names := make([]string, nDocs)
	for i := range trees {
		trees[i] = treetest.RandomTree(rng, docSize, ids, dict)
		names[i] = fmt.Sprintf("doc%03d", i)
	}
	return dict, trees, names
}

// buildShards splits the forest by AssignShard and builds one summary
// per non-empty shard, mirroring what `treelattice shard` does on disk.
func buildShards(t *testing.T, trees []*labeltree.Tree, names []string, n int, opts core.BuildOptions) []*core.Summary {
	t.Helper()
	groups := make([][]*labeltree.Tree, n)
	for i, tree := range trees {
		s := fleet.AssignShard(names[i], n)
		groups[s] = append(groups[s], tree)
	}
	var out []*core.Summary
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sum, err := core.BuildForestContext(context.Background(), g, opts)
		if err != nil {
			t.Fatalf("building shard summary: %v", err)
		}
		out = append(out, sum)
	}
	return out
}

// refreeze round-trips a summary through serialization into the frozen
// read-only representation, interning into dict — the load path fleet
// tenants use in production.
func refreeze(t *testing.T, sum *core.Summary, dict *labeltree.Dict) *core.Summary {
	t.Helper()
	var buf bytes.Buffer
	if _, err := sum.WriteTo(&buf); err != nil {
		t.Fatalf("serializing summary: %v", err)
	}
	fz, err := core.ReadFrozen(&buf, dict)
	if err != nil {
		t.Fatalf("loading frozen summary: %v", err)
	}
	return fz
}

// TestScatterGatherDifferential is the tentpole invariant: estimates
// over N shard summaries combined by the front end are bit-identical to
// a single BuildForestContext summary over the same documents — for the
// map and frozen backends and every registered estimator method.
func TestScatterGatherDifferential(t *testing.T) {
	dict, trees, names := testCorpus(t, 7, 12, 28)
	opts := core.BuildOptions{K: 3}
	ctx := context.Background()
	src := core.TreeSliceSource(trees)

	single, err := core.BuildForestContext(ctx, trees, opts)
	if err != nil {
		t.Fatalf("building single summary: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	_, ids := treetest.Alphabet(8) // same names, same IDs as dict
	queries := make([]labeltree.Pattern, 0, 24)
	for size := 2; size <= 7; size++ {
		for i := 0; i < 4; i++ {
			queries = append(queries, treetest.RandomPattern(rng, size, ids))
		}
	}

	for _, nShards := range []int{2, 4} {
		shards := buildShards(t, trees, names, nShards, opts)
		for _, backend := range []string{"map", "frozen"} {
			singleB := single
			shardsB := shards
			if backend == "frozen" {
				// One shared dict across every frozen load, as LoadTenant
				// does, so canonical keys agree across shard stores.
				singleB = refreeze(t, single, dict)
				shardsB = make([]*core.Summary, len(shards))
				for i, sh := range shards {
					shardsB[i] = refreeze(t, sh, dict)
				}
			}
			combined, err := core.FromShards(shardsB)
			if err != nil {
				t.Fatalf("FromShards: %v", err)
			}
			// Bind the same documents in the same order to both sides so
			// document-needing methods (markov, treesketches, sampling,
			// ensemble) see identical inputs.
			singleB.BindSource(src)
			combined.BindSource(src)

			if got, want := combined.K(), singleB.K(); got != want {
				t.Fatalf("%s/%d shards: combined K=%d, single K=%d", backend, nShards, got, want)
			}
			for _, method := range core.RegisteredMethods() {
				for qi, q := range queries {
					want, errW := singleB.EstimateStrict(ctx, q, method)
					got, errG := combined.EstimateStrict(ctx, q, method)
					if (errW == nil) != (errG == nil) {
						t.Fatalf("%s/%d shards/%s query %d: single err=%v combined err=%v",
							backend, nShards, method, qi, errW, errG)
					}
					if errW != nil {
						continue
					}
					if got != want {
						t.Fatalf("%s/%d shards/%s query %d: combined=%+v single=%+v",
							backend, nShards, method, qi, got, want)
					}
				}
			}
		}
	}
}

// TestGatherFullAnswer checks the scatter-gather front end itself: a
// fully-responsive gather answers bit-identically to the single summary
// and reports every shard answered.
func TestGatherFullAnswer(t *testing.T) {
	_, trees, names := testCorpus(t, 3, 10, 24)
	opts := core.BuildOptions{K: 3}
	ctx := context.Background()

	single, err := core.BuildForestContext(ctx, trees, opts)
	if err != nil {
		t.Fatal(err)
	}
	sums := buildShards(t, trees, names, 4, opts)
	shards := make([]fleet.Shard, len(sums))
	for i, s := range sums {
		shards[i] = fleet.Shard{Name: fleet.ShardFile(i), Summary: s}
	}
	tenant, err := fleet.NewShardedTenant("acme", shards)
	if err != nil {
		t.Fatal(err)
	}
	q, err := single.ParseQuery("l0(l1)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := tenant.Estimate(ctx, q, core.MethodRecursiveVoting, fleet.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.EstimateStrict(ctx, q, core.MethodRecursiveVoting)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != want.Estimate {
		t.Fatalf("gather estimate %v, single %v", res.Estimate, want.Estimate)
	}
	if res.Partial || res.ShardsAnswered != len(sums) || res.ShardsTotal != len(sums) {
		t.Fatalf("full gather reported %+v", res)
	}
}

// TestGatherDegradation: a shard that misses its deadline is excluded,
// the answer covers the responders and is marked degraded/partial, and a
// fleet with no responders fails with ErrNoShards.
func TestGatherDegradation(t *testing.T) {
	_, trees, names := testCorpus(t, 5, 8, 20)
	opts := core.BuildOptions{K: 3}
	ctx := context.Background()
	sums := buildShards(t, trees, names, 2, opts)
	if len(sums) != 2 {
		t.Fatalf("want 2 shards, got %d", len(sums))
	}
	hang := func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}
	g, err := fleet.NewGather([]fleet.Shard{
		{Name: "shard-0000.tlat", Summary: sums[0]},
		{Name: "shard-0001.tlat", Summary: sums[1], Probe: hang},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := sums[0].ParseQuery("l0(l1)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Estimate(ctx, q, core.MethodRecursive, fleet.EstimateOptions{ShardTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("degraded estimate failed: %v", err)
	}
	if !res.Partial || !res.Degraded || res.ShardsAnswered != 1 || res.ShardsTotal != 2 {
		t.Fatalf("want partial 1/2 answer, got %+v", res)
	}
	want, err := sums[0].EstimateStrict(ctx, q, core.MethodRecursive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != want.Estimate {
		t.Fatalf("partial answer %v, responder-only summary says %v", res.Estimate, want.Estimate)
	}

	// Both shards down: nothing to combine.
	g2, err := fleet.NewGather([]fleet.Shard{
		{Name: "a", Summary: sums[0], Probe: hang},
		{Name: "b", Summary: sums[1], Probe: hang},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Estimate(ctx, q, core.MethodRecursive, fleet.EstimateOptions{ShardTimeout: 5 * time.Millisecond}); !errors.Is(err, fleet.ErrNoShards) {
		t.Fatalf("want ErrNoShards, got %v", err)
	}
}

func TestAssignShardDeterministicAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 64} {
		seen := make(map[int]bool)
		for i := 0; i < 500; i++ {
			doc := fmt.Sprintf("doc-%d.xml", i)
			s := fleet.AssignShard(doc, n)
			if s != fleet.AssignShard(doc, n) {
				t.Fatalf("AssignShard not deterministic for %q", doc)
			}
			if s < 0 || s >= n {
				t.Fatalf("AssignShard(%q, %d) = %d out of range", doc, n, s)
			}
			seen[s] = true
		}
		if n <= 8 && len(seen) != n {
			t.Fatalf("500 docs over %d shards hit only %d shards", n, len(seen))
		}
	}
}
