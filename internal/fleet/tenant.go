package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"treelattice/internal/core"
	"treelattice/internal/labeltree"
)

// Tenant is one resident corpus: a named summary (possibly the combined
// view over several shards) ready to answer estimates.
type Tenant struct {
	Name string
	// Summary answers estimates: the tenant's single summary, or the
	// full shard combination for a sharded tenant.
	Summary *core.Summary
	// Gather is the scatter-gather front end; nil for single-summary
	// tenants.
	Gather *Gather
	// Shards is the number of shard snapshots backing the tenant (1 for
	// a single summary).
	Shards int
}

// Estimate answers one estimate for the tenant, through the
// scatter-gather front end when the tenant is sharded. Single-summary
// tenants answer with a trivially-full Result (one shard, answered).
func (t *Tenant) Estimate(ctx context.Context, q labeltree.Pattern, method core.Method, opts EstimateOptions) (Result, error) {
	if t.Gather != nil {
		return t.Gather.Estimate(ctx, q, method, opts)
	}
	run := t.Summary.EstimateDegradable
	if opts.NoFallback {
		run = t.Summary.EstimateStrict
	}
	de, err := run(ctx, q, method)
	if err != nil {
		return Result{ShardsTotal: 1}, err
	}
	return Result{DegradedEstimate: de, ShardsTotal: 1, ShardsAnswered: 1}, nil
}

// NewTenant wraps an in-memory summary as an unsharded tenant — the path
// by which a live corpus (the legacy single-tenant routes) joins the
// registry.
func NewTenant(name string, sum *core.Summary) *Tenant {
	return &Tenant{Name: name, Summary: sum, Shards: 1}
}

// NewShardedTenant assembles a tenant over explicit shards, scattering
// estimates through a Gather front end.
func NewShardedTenant(name string, shards []Shard) (*Tenant, error) {
	g, err := NewGather(shards)
	if err != nil {
		return nil, err
	}
	sum, err := g.Summary()
	if err != nil {
		return nil, err
	}
	return &Tenant{Name: name, Summary: sum, Gather: g, Shards: len(shards)}, nil
}

// LoadTenant loads a tenant's read-only snapshots from its directory
// under the fleet root. The layout is one of:
//
//	<dir>/summary.tlat        single summary
//	<dir>/shard-NNNN.tlat...  one snapshot per shard (sharded tenant)
//
// Every snapshot loads through core.OpenSnapshotFile, which detects the
// format by magic: frozen for TLAT files, compressed (memory-mapped
// where supported) for TLCZ files — the shard writer keeps the .tlat
// name either way. All shards of a tenant intern labels into one shared
// dictionary, so canonical keys agree across shard stores and the
// combined view sums them correctly.
func LoadTenant(dir, name string) (*Tenant, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if sumPath := filepath.Join(dir, SummaryFile); fileExists(sumPath) {
		sum, err := core.OpenSnapshotFile(sumPath, labeltree.NewDict())
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %q: %w", name, err)
		}
		return &Tenant{Name: name, Summary: sum, Shards: 1}, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	files := shardFiles(names)
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: %q has no summary.tlat or shard snapshots", ErrUnknownTenant, name)
	}
	dict := labeltree.NewDict()
	shards := make([]Shard, len(files))
	for i, fn := range files {
		sum, err := core.OpenSnapshotFile(filepath.Join(dir, fn), dict)
		if err != nil {
			return nil, fmt.Errorf("fleet: tenant %q shard %s: %w", name, fn, err)
		}
		shards[i] = Shard{Name: fn, Summary: sum}
	}
	return NewShardedTenant(name, shards)
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}

// ResidentBytes reports the bytes the tenant's backend keeps resident —
// the figure the registry's byte-budget admission meters.
func (t *Tenant) ResidentBytes() int {
	if t.Summary == nil {
		return 0
	}
	return t.Summary.ResidentBytes()
}

// StoreKind names the tenant's backing store ("shards", "compressed",
// "frozen", or "map").
func (t *Tenant) StoreKind() string {
	if t.Summary == nil {
		return ""
	}
	return t.Summary.StoreKind()
}
