// Package fleet turns a single-summary estimator into a multi-tenant,
// sharded serving tier: a registry of named tenant summaries loaded
// lazily from frozen snapshots with an LRU of resident tenants, a
// deterministic document→shard assignment for splitting one large corpus
// into independently-servable shard summaries, and a scatter-gather
// front end that combines per-shard counts exactly as forest estimation
// combines per-document counts — so a fleet of shards answers
// bit-identically to one merged summary, and degrades to a partial
// answer when a shard misses its deadline.
package fleet

import (
	"errors"
	"fmt"
	"strings"
)

// MaxNameLen bounds tenant and shard names. Names become directory
// components on disk and label values in metrics; 64 bytes is generous
// for both.
const MaxNameLen = 64

// ErrBadName reports a tenant or shard name that fails validation.
var ErrBadName = errors.New("fleet: invalid name")

// ValidateName enforces the strict tenant/shard name grammar: 1 to
// MaxNameLen bytes of lowercase ASCII letters, digits, '.', '_' and '-',
// beginning and ending with a letter or digit, and never containing
// "..". Names are used as path components under the fleet root and as
// metric label values, so the grammar rejects anything that could
// traverse directories ("..", "/", "\"), hide in logs (controls,
// non-ASCII), or collide case-insensitively (uppercase).
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty", ErrBadName)
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("%w: %d bytes exceeds %d", ErrBadName, len(name), MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 || i == len(name)-1 {
				return fmt.Errorf("%w: %q must start and end with a letter or digit", ErrBadName, name)
			}
		default:
			return fmt.Errorf("%w: %q contains byte %q", ErrBadName, name, c)
		}
	}
	if strings.Contains(name, "..") {
		return fmt.Errorf("%w: %q contains %q", ErrBadName, name, "..")
	}
	return nil
}
