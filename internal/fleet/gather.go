package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"treelattice/internal/core"
	"treelattice/internal/labeltree"
)

// ErrNoShards reports a scatter-gather estimate for which no shard
// answered its responsiveness probe: there is nothing to combine, not
// even a degraded answer.
var ErrNoShards = errors.New("fleet: no shards answered")

// Shard is one backend of a scatter-gather tenant: a shard summary plus
// an optional responsiveness probe. A nil Probe means the shard is local
// memory and always answers; a non-nil Probe is consulted per estimate
// with the shard deadline, and a shard whose probe fails or times out is
// excluded from that estimate (the answer degrades to the responders).
type Shard struct {
	Name    string
	Summary *core.Summary
	Probe   func(ctx context.Context) error
}

// Gather is the scatter-gather front end over a tenant's shards. An
// estimate fans out to the responsive shards and combines their counts
// through core.FromShards — the same additive algebra forest estimation
// uses across documents — so a full gather is bit-identical to a single
// summary over the union corpus, and a partial gather is exactly the
// answer the responding subset's corpus would give.
//
// Combined summaries are cached per responder set (a bitmask, hence
// MaxShards = 64), so the steady state — every shard healthy — reuses
// one combined summary and its sub-estimate caches across requests.
type Gather struct {
	shards []Shard

	mu       sync.Mutex
	source   core.TreeSource
	combined map[uint64]*core.Summary
}

// NewGather assembles a scatter-gather front end over shards. All shard
// summaries must share one dictionary and K (checked on first
// combination).
func NewGather(shards []Shard) (*Gather, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: gather needs at least one shard")
	}
	if len(shards) > MaxShards {
		return nil, fmt.Errorf("fleet: %d shards exceeds MaxShards=%d", len(shards), MaxShards)
	}
	return &Gather{shards: shards, combined: make(map[uint64]*core.Summary, 1)}, nil
}

// Shards reports the shard count.
func (g *Gather) Shards() int { return len(g.shards) }

// BindSource binds the union corpus's documents to every combined
// summary the gather builds, enabling document-needing estimator methods
// (markov, treesketches, sampling, ensemble). Frozen fleet tenants have
// no documents and skip this; those methods then answer
// ErrMethodUnavailable, as on any frozen summary.
func (g *Gather) BindSource(src core.TreeSource) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.source = src
	for _, s := range g.combined {
		s.BindSource(src)
	}
}

// Summary returns the full combination of every shard — the summary a
// single merged build over the union corpus would produce.
func (g *Gather) Summary() (*core.Summary, error) {
	return g.combinedFor(g.fullMask())
}

func (g *Gather) fullMask() uint64 {
	if len(g.shards) == MaxShards {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(g.shards))) - 1
}

// combinedFor returns (building and caching on first use) the combined
// summary over the responder set encoded in mask.
func (g *Gather) combinedFor(mask uint64) (*core.Summary, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.combined[mask]; ok {
		return s, nil
	}
	subset := make([]*core.Summary, 0, len(g.shards))
	for i := range g.shards {
		if mask&(1<<uint(i)) != 0 {
			subset = append(subset, g.shards[i].Summary)
		}
	}
	s, err := core.FromShards(subset)
	if err != nil {
		return nil, err
	}
	if g.source != nil {
		s.BindSource(g.source)
	}
	g.combined[mask] = s
	return s, nil
}

// EstimateOptions tunes one scatter-gather estimate.
type EstimateOptions struct {
	// ShardTimeout bounds each shard's responsiveness probe; a shard
	// that does not answer within it is excluded from this estimate.
	// Zero means probes run under the request context alone.
	ShardTimeout time.Duration
	// NoFallback disables the degradation ladder: a blown budget
	// returns the error instead of a cheaper method's answer.
	NoFallback bool
}

// Result is a scatter-gather estimate: the answer plus how much of the
// fleet produced it. Partial marks an answer some shard sat out of —
// exact for the responding subset's corpus, an undercount for the whole.
type Result struct {
	core.DegradedEstimate
	ShardsTotal    int
	ShardsAnswered int
	Partial        bool
}

// Estimate scatters q's estimate across the responsive shards and
// gathers one combined answer. Unresponsive shards (probe error or
// timeout) degrade the result to Partial rather than failing it; only a
// fleet with no responsive shards at all errors (ErrNoShards).
func (g *Gather) Estimate(ctx context.Context, q labeltree.Pattern, method core.Method, opts EstimateOptions) (Result, error) {
	mask := g.responders(ctx, opts.ShardTimeout)
	res := Result{ShardsTotal: len(g.shards)}
	if mask == 0 {
		return res, ErrNoShards
	}
	sum, err := g.combinedFor(mask)
	if err != nil {
		return res, err
	}
	run := sum.EstimateDegradable
	if opts.NoFallback {
		run = sum.EstimateStrict
	}
	de, err := run(ctx, q, method)
	if err != nil {
		return res, err
	}
	res.DegradedEstimate = de
	for m := mask; m != 0; m &= m - 1 {
		res.ShardsAnswered++
	}
	res.Partial = res.ShardsAnswered < res.ShardsTotal
	if res.Partial {
		res.Degraded = true
	}
	return res, nil
}

// responders probes every shard concurrently and returns the bitmask of
// shards that answered. Probe-less shards always answer.
func (g *Gather) responders(ctx context.Context, timeout time.Duration) uint64 {
	var mask uint64
	probed := false
	for i := range g.shards {
		if g.shards[i].Probe == nil {
			mask |= 1 << uint(i)
		} else {
			probed = true
		}
	}
	if !probed {
		return mask
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i := range g.shards {
		if g.shards[i].Probe == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pctx := ctx
			if timeout > 0 {
				var cancel context.CancelFunc
				pctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			if g.shards[i].Probe(pctx) == nil {
				mu.Lock()
				mask |= 1 << uint(i)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return mask
}
