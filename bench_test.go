// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus ablations of the
// design choices: voting, lattice level K, the hash-vs-trie summary
// store, the sparse matcher, and δ-derivable pruning.
//
// Accuracy experiments report their headline numbers via b.ReportMetric
// (err%/… columns); time experiments are ordinary Go benchmarks. The
// dataset scale defaults to a laptop-friendly size; set TWIG_BENCH_SCALE
// to enlarge. cmd/twigbench prints the full paper-style report.
package treelattice_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"treelattice/internal/core"
	"treelattice/internal/cst"
	"treelattice/internal/datagen"
	"treelattice/internal/estimate"
	"treelattice/internal/experiments"
	"treelattice/internal/labeltree"
	"treelattice/internal/lattice"
	"treelattice/internal/match"
	"treelattice/internal/mine"
	"treelattice/internal/online"
	"treelattice/internal/planner"
	"treelattice/internal/treesketch"
	"treelattice/internal/treetest"
	"treelattice/internal/twigjoin"
	"treelattice/internal/workload"
)

func benchScale() int {
	if v := os.Getenv("TWIG_BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 4000
}

func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:        benchScale(),
		Seed:         42,
		K:            4,
		Sizes:        []int{4, 5, 6, 7, 8},
		PerSize:      20,
		SketchBudget: 12 << 10, // proportional to the reduced scale
	}
}

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(benchConfig())
	})
	return suite
}

func benchEnv(b *testing.B, p datagen.Profile) *experiments.Env {
	b.Helper()
	e, err := benchSuite(b).Env(p)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// ---- Table 1: dataset characteristics ----

func BenchmarkTable1DatasetGeneration(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dict := labeltree.NewDict()
				if _, err := datagen.Generate(datagen.Config{Profile: p, Scale: benchScale(), Seed: 42}, dict); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table 2: patterns per level (mining to level 5) ----

func BenchmarkTable2PatternsPerLevel(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			e := benchEnv(b, p)
			var last []int
			for i := 0; i < b.N; i++ {
				sizes, err := mine.CountPerLevel(e.Tree, 5, mine.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = sizes
			}
			for l := 1; l <= 5; l++ {
				b.ReportMetric(float64(last[l]), fmt.Sprintf("L%d-patterns", l))
			}
		})
	}
}

// ---- Table 3: summary construction time and size ----

func BenchmarkTable3LatticeConstruction(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			e := benchEnv(b, p)
			var kb float64
			for i := 0; i < b.N; i++ {
				sum, err := core.Build(e.Tree, core.BuildOptions{K: 4})
				if err != nil {
					b.Fatal(err)
				}
				kb = float64(sum.SizeBytes()) / 1024
			}
			b.ReportMetric(kb, "summaryKB")
		})
	}
}

// BenchmarkCorpusBuildWorkers measures the parallel corpus-build pipeline
// (per-document fan-out plus per-level candidate counting) against the
// sequential baseline on a many-document forest. The Workers=NumCPU run
// should show the speedup that motivates the pipeline; results are
// bit-identical either way (see TestBuildForestEquivalence).
func BenchmarkCorpusBuildWorkers(b *testing.B) {
	makeForest := func() []*labeltree.Tree {
		dict := labeltree.NewDict()
		trees := make([]*labeltree.Tree, 0, 8)
		for i, p := range []datagen.Profile{datagen.XMark, datagen.NASA, datagen.IMDB, datagen.PSD} {
			for j := 0; j < 2; j++ {
				tr, err := datagen.Generate(datagen.Config{Profile: p, Scale: benchScale() / 2, Seed: int64(42 + 10*i + j)}, dict)
				if err != nil {
					b.Fatal(err)
				}
				trees = append(trees, tr)
			}
		}
		return trees
	}
	forest := makeForest()
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildForestContext(context.Background(), forest, core.BuildOptions{K: 4, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable3SketchConstruction(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			e := benchEnv(b, p)
			var kb float64
			for i := 0; i < b.N; i++ {
				syn := treesketch.Build(e.Tree, treesketch.Options{BudgetBytes: benchConfig().SketchBudget})
				kb = float64(syn.SizeBytes()) / 1024
			}
			b.ReportMetric(kb, "summaryKB")
		})
	}
}

// ---- Figures 7 and 8: estimation accuracy ----

func BenchmarkFigure7AccuracyByQuerySize(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			s := benchSuite(b)
			benchEnv(b, p) // force construction outside the timer-reported loop
			var rows []experiments.Figure7Row
			for i := 0; i < b.N; i++ {
				all, err := s.Figure7()
				if err != nil {
					b.Fatal(err)
				}
				rows = all
			}
			for _, r := range rows {
				if r.Dataset == p && r.Size == 8 {
					b.ReportMetric(r.AvgErrPct, r.Estimator+"-err%")
				}
			}
		})
	}
}

func BenchmarkFigure8ErrorCDF(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.Figure8Row
	for i := 0; i < b.N; i++ {
		all, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		rows = all
	}
	for _, r := range rows {
		if r.Dataset == datagen.XMark {
			// Fraction of queries within 100% error: the mid-curve point
			// the paper's Figure 8 plots.
			for _, pt := range r.Points {
				if pt.Threshold > 99 && pt.Threshold < 101 {
					b.ReportMetric(pt.CumPercent, r.Estimator+"-pct<=100%")
				}
			}
		}
	}
}

// ---- Figure 9: estimation response time ----

func BenchmarkFigure9ResponseTime(b *testing.B) {
	e := benchEnv(b, datagen.XMark)
	lat := e.Summary.Lattice()
	ests := map[string]func(labeltree.Pattern) float64{
		"recursive":        estimate.NewRecursive(lat, false).Estimate,
		"recursive-voting": estimate.NewRecursive(lat, true).Estimate,
		"fix-sized":        estimate.NewFixSized(lat).Estimate,
		"treesketches":     e.Sketch.Estimate,
	}
	for _, name := range []string{"recursive", "recursive-voting", "fix-sized", "treesketches"} {
		fn := ests[name]
		for _, size := range []int{4, 6, 8} {
			qs := e.Positive[size]
			if len(qs) == 0 {
				continue
			}
			b.Run(fmt.Sprintf("%s/size%d", name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fn(qs[i%len(qs)].Pattern)
				}
			})
		}
	}
}

// BenchmarkFrozenLookup compares point lookups on the map-backed summary
// against the frozen read-optimized store over the same entries. The
// frozen store's open-addressing probe over a flat arena should match or
// beat the map on time and do zero allocations per lookup.
func BenchmarkFrozenLookup(b *testing.B) {
	e := benchEnv(b, datagen.NASA)
	lat := e.Summary.Lattice()
	frozen := lattice.Freeze(lat)
	keys := make([]labeltree.Key, 0, lat.Len())
	for _, entry := range lat.Entries(0) {
		keys = append(keys, entry.Pattern.Key())
	}
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := lat.CountKey(keys[i%len(keys)]); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("frozen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := frozen.CountKey(keys[i%len(keys)]); !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkCompressedLookup compares point lookups across all three
// store backends per dataset: the map-backed summary, the frozen
// open-addressing store, and the compressed front-coded store. The
// compressed rows also report the resident footprint and the
// frozen/compressed compression ratio — the space×time trade the
// compressed backend exists for. Both immutable stores must do zero
// allocations per lookup.
func BenchmarkCompressedLookup(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			e := benchEnv(b, p)
			lat := e.Summary.Lattice()
			frozen := lattice.Freeze(lat)
			comp := lattice.Compress(lat)
			keys := make([]labeltree.Key, 0, lat.Len())
			for _, entry := range lat.Entries(0) {
				keys = append(keys, entry.Pattern.Key())
			}
			b.Run("frozen", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, ok := frozen.CountKey(keys[i%len(keys)]); !ok {
						b.Fatal("miss")
					}
				}
				b.ReportMetric(float64(frozen.ResidentBytes()), "resident-bytes")
			})
			b.Run("compressed", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, ok := comp.CountKey(keys[i%len(keys)]); !ok {
						b.Fatal("miss")
					}
				}
				b.ReportMetric(float64(comp.ResidentBytes()), "resident-bytes")
				b.ReportMetric(float64(frozen.ResidentBytes())/float64(comp.ResidentBytes()), "compression-ratio")
			})
		})
	}
}

// BenchmarkFigure9ResponseTimeFrozen is Figure 9 over the frozen store
// with a warm shared sub-estimate cache per method — the serving-replica
// configuration. Estimates are bit-identical to the map-backed rows (see
// the differential tests); only the response time should move.
func BenchmarkFigure9ResponseTimeFrozen(b *testing.B) {
	e := benchEnv(b, datagen.XMark)
	frozen := lattice.Freeze(e.Summary.Lattice())
	ests := map[string]func(labeltree.Pattern) float64{
		"recursive":        (&estimate.Recursive{Sum: frozen, Cache: estimate.NewSubCache(0)}).Estimate,
		"recursive-voting": (&estimate.Recursive{Sum: frozen, Voting: true, Cache: estimate.NewSubCache(0)}).Estimate,
		"fix-sized":        (&estimate.FixSized{Sum: frozen, Cache: estimate.NewSubCache(0)}).Estimate,
	}
	for _, name := range []string{"recursive", "recursive-voting", "fix-sized"} {
		fn := ests[name]
		for _, size := range []int{4, 6, 8} {
			qs := e.Positive[size]
			if len(qs) == 0 {
				continue
			}
			// Warm the shared cache the way sustained serving traffic would.
			for _, q := range qs {
				fn(q.Pattern)
			}
			b.Run(fmt.Sprintf("%s/size%d", name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fn(qs[i%len(qs)].Pattern)
				}
			})
		}
	}
}

// BenchmarkFigure9ResponseTimeCompressed is Figure 9 over the compressed
// store with a warm shared sub-estimate cache per method — the
// byte-budgeted serving-replica configuration. Estimates stay
// bit-identical to the map-backed and frozen rows (see the differential
// tests); the compressed rows trade some lookup time for a 3×+ smaller
// resident summary.
func BenchmarkFigure9ResponseTimeCompressed(b *testing.B) {
	e := benchEnv(b, datagen.XMark)
	comp := lattice.Compress(e.Summary.Lattice())
	ests := map[string]func(labeltree.Pattern) float64{
		"recursive":        (&estimate.Recursive{Sum: comp, Cache: estimate.NewSubCache(0)}).Estimate,
		"recursive-voting": (&estimate.Recursive{Sum: comp, Voting: true, Cache: estimate.NewSubCache(0)}).Estimate,
		"fix-sized":        (&estimate.FixSized{Sum: comp, Cache: estimate.NewSubCache(0)}).Estimate,
	}
	for _, name := range []string{"recursive", "recursive-voting", "fix-sized"} {
		fn := ests[name]
		for _, size := range []int{4, 6, 8} {
			qs := e.Positive[size]
			if len(qs) == 0 {
				continue
			}
			// Warm the shared cache the way sustained serving traffic would.
			for _, q := range qs {
				fn(q.Pattern)
			}
			b.Run(fmt.Sprintf("%s/size%d", name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fn(qs[i%len(qs)].Pattern)
				}
			})
		}
	}
}

// ---- Figure 10: δ-derivable pruning ----

func BenchmarkFigure10aZeroDerivablePruning(b *testing.B) {
	for _, p := range datagen.AllProfiles() {
		b.Run(string(p), func(b *testing.B) {
			e := benchEnv(b, p)
			var saved float64
			for i := 0; i < b.N; i++ {
				pruned := e.Summary.Prune(0)
				saved = 100 * (1 - float64(pruned.SizeBytes())/float64(e.Summary.SizeBytes()))
			}
			b.ReportMetric(saved, "saving%")
		})
	}
}

func BenchmarkFigure10bOptSummary(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.Figure10bRow
	for i := 0; i < b.N; i++ {
		r, _, _, err := s.Figure10b()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Size == 8 {
			b.ReportMetric(r.VotingPct, "voting-err%")
			b.ReportMetric(r.VotingOptPct, "votingOPT-err%")
		}
	}
}

func BenchmarkFigure10cdDeltaPruning(b *testing.B) {
	s := benchSuite(b)
	var cRows []experiments.Figure10cRow
	for i := 0; i < b.N; i++ {
		c, _, err := s.Figure10cd(datagen.IMDB)
		if err != nil {
			b.Fatal(err)
		}
		cRows = c
	}
	for _, r := range cRows {
		b.ReportMetric(r.SizeKB, fmt.Sprintf("delta%d-KB", r.DeltaPct))
	}
}

// ---- Figure 11: worked example ----

func BenchmarkFigure11WorkedExample(b *testing.B) {
	var r experiments.Figure11Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure11()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TreeLattice, "treelattice")
	b.ReportMetric(r.Sketch, "treesketches")
	b.ReportMetric(float64(r.TrueCount), "true")
}

// ---- Negative workloads ----

func BenchmarkNegativeWorkloads(b *testing.B) {
	s := benchSuite(b)
	var rows []experiments.NegativeRow
	for i := 0; i < b.N; i++ {
		r, err := s.Negative()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Dataset == datagen.NASA {
			b.ReportMetric(r.ZeroPct, r.Estimator+"-zero%")
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationVoting isolates the cost of the voting extension per
// query size (the Figure 9 "voting degrades with size" observation).
func BenchmarkAblationVoting(b *testing.B) {
	e := benchEnv(b, datagen.NASA)
	lat := e.Summary.Lattice()
	for _, voting := range []bool{false, true} {
		est := estimate.NewRecursive(lat, voting)
		for _, size := range []int{5, 7} {
			qs := e.Positive[size]
			if len(qs) == 0 {
				continue
			}
			b.Run(fmt.Sprintf("voting=%v/size%d", voting, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					est.Estimate(qs[i%len(qs)].Pattern)
				}
			})
		}
	}
}

// BenchmarkAblationLatticeK sweeps the lattice level: construction cost
// and size grow with K while estimation error falls.
func BenchmarkAblationLatticeK(b *testing.B) {
	e := benchEnv(b, datagen.PSD)
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var kb float64
			for i := 0; i < b.N; i++ {
				sum, err := core.Build(e.Tree, core.BuildOptions{K: k})
				if err != nil {
					b.Fatal(err)
				}
				kb = float64(sum.SizeBytes()) / 1024
			}
			b.ReportMetric(kb, "summaryKB")
		})
	}
}

// BenchmarkAblationStore compares the hash-table summary store against
// the prefix-trie alternative the paper rejected (Section 4.2).
func BenchmarkAblationStore(b *testing.B) {
	e := benchEnv(b, datagen.NASA)
	lat := e.Summary.Lattice()
	trie := lattice.FromSummary(lat)
	keys := make([]labeltree.Key, 0, lat.Len())
	for _, entry := range lat.Entries(0) {
		keys = append(keys, entry.Pattern.Key())
	}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := lat.CountKey(keys[i%len(keys)]); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := trie.Get(keys[i%len(keys)]); !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkAblationMatcher compares the sparse-DP match counter against
// brute-force enumeration on a small tree, validating the need for the
// DP engine during mining.
func BenchmarkAblationMatcher(b *testing.B) {
	dict, alphabet := treetest.Alphabet(4)
	_ = dict
	rng := rand.New(rand.NewSource(9))
	tr := treetest.RandomTree(rng, 400, alphabet, dict)
	counter := match.NewCounter(tr)
	q := treetest.RandomPattern(rng, 4, alphabet)
	b.Run("sparse-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counter.Count(q)
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.BruteCount(tr, q, 0)
		}
	})
}

// BenchmarkAblationDelta measures estimation cost against summaries
// pruned at increasing δ: smaller summaries force more reconstruction
// work per query.
func BenchmarkAblationDelta(b *testing.B) {
	e := benchEnv(b, datagen.IMDB)
	qs := e.Positive[6]
	if len(qs) == 0 {
		b.Skip("no size-6 queries")
	}
	for _, delta := range []float64{0, 0.1, 0.3} {
		pruned := e.Summary.Prune(delta)
		est := estimate.NewRecursive(pruned.Lattice(), true)
		b.Run(fmt.Sprintf("delta=%v", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est.Estimate(qs[i%len(qs)].Pattern)
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures positive workload sampling.
func BenchmarkWorkloadGeneration(b *testing.B) {
	e := benchEnv(b, datagen.NASA)
	for i := 0; i < b.N; i++ {
		if _, err := workload.Positive(e.Tree, workload.Options{Sizes: []int{6}, PerSize: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVotingScheme compares the paper's mean voting with the
// robust median and trimmed-mean alternatives it leaves open, reporting
// accuracy on the IMDB workload (where decomposition error is largest).
func BenchmarkAblationVotingScheme(b *testing.B) {
	e := benchEnv(b, datagen.IMDB)
	lat := e.Summary.Lattice()
	for _, scheme := range []estimate.VotingScheme{estimate.Mean, estimate.Median, estimate.TrimmedMean} {
		est := &estimate.Recursive{Sum: lat, Voting: true, Scheme: scheme}
		b.Run(scheme.String(), func(b *testing.B) {
			var sumErr float64
			n := 0
			for i := 0; i < b.N; i++ {
				sumErr, n = 0, 0
				for _, size := range []int{5, 6, 7} {
					for _, q := range e.Positive[size] {
						truth := float64(q.TrueCount)
						got := est.Estimate(q.Pattern)
						if truth > 0 {
							sumErr += abs(got-truth) / truth
							n++
						}
					}
				}
			}
			if n > 0 {
				b.ReportMetric(100*sumErr/float64(n), "avg-err%")
			}
		})
	}
}

// BenchmarkAblationCST compares the CST baseline (set-hashing signatures)
// against the TreeLattice voting estimator on the same workload.
func BenchmarkAblationCST(b *testing.B) {
	e := benchEnv(b, datagen.NASA)
	c := cst.Build(e.Tree, cst.Options{MaxPathLen: benchConfig().K})
	vote := estimate.NewRecursive(e.Summary.Lattice(), true)
	run := func(b *testing.B, f func(labeltree.Pattern) float64) {
		var sumErr float64
		n := 0
		for i := 0; i < b.N; i++ {
			sumErr, n = 0, 0
			for _, size := range []int{5, 6} {
				for _, q := range e.Positive[size] {
					truth := float64(q.TrueCount)
					if truth > 0 {
						sumErr += abs(f(q.Pattern)-truth) / truth
						n++
					}
				}
			}
		}
		if n > 0 {
			b.ReportMetric(100*sumErr/float64(n), "avg-err%")
		}
	}
	b.Run("treelattice", func(b *testing.B) { run(b, vote.Estimate) })
	b.Run("cst", func(b *testing.B) { run(b, c.Estimate) })
}

// BenchmarkTwigJoinExecution measures the execution engine against the
// XMark document, per axis flavor.
func BenchmarkTwigJoinExecution(b *testing.B) {
	e := benchEnv(b, datagen.XMark)
	x := twigjoin.NewIndex(e.Tree)
	queries := map[string]string{
		"child":      "//open_auction(bidder(date),itemref)",
		"descendant": "//item(//keyword,//mail)",
		"path":       "//site(open_auctions(open_auction(bidder(increase))))",
	}
	for name, qs := range queries {
		q := twigjoin.MustParseQuery(qs, e.Dict)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				twigjoin.Count(x, q)
			}
		})
	}
	labels := []labeltree.LabelID{}
	for _, n := range []string{"site", "open_auctions", "open_auction", "bidder"} {
		if id, ok := e.Dict.Lookup(n); ok {
			labels = append(labels, id)
		}
	}
	b.Run("pathstack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			twigjoin.CountPath(x, labels, twigjoin.Child)
		}
	})
}

// BenchmarkPlannerVsNaive measures scanned candidates for planned versus
// naive bind orders.
func BenchmarkPlannerVsNaive(b *testing.B) {
	e := benchEnv(b, datagen.XMark)
	x := twigjoin.NewIndex(e.Tree)
	est := estimate.NewRecursive(e.Summary.Lattice(), true)
	// Written expanding-branch-first so the naive order is the bad one.
	q := twigjoin.MustParseQuery("//open_auction(bidder(date,increase),itemref,current)", e.Dict)
	plan := planner.Choose(q, est)
	naive := planner.Plan{Order: planner.NaiveOrder(q)}
	var planned, naiveScan int64
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st := planner.Execute(x, q, plan)
			planned = st.Candidates
		}
		b.ReportMetric(float64(planned), "candidates")
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, st := planner.Execute(x, q, naive)
			naiveScan = st.Candidates
		}
		b.ReportMetric(float64(naiveScan), "candidates")
	})
}

// BenchmarkOnlineTuner measures feedback-adapted estimation.
func BenchmarkOnlineTuner(b *testing.B) {
	e := benchEnv(b, datagen.IMDB)
	tuner := online.NewTuner(e.Summary.Lattice(), 4096)
	qs := e.Positive[6]
	if len(qs) == 0 {
		b.Skip("no workload")
	}
	for _, q := range qs {
		tuner.Feedback(q.Pattern, q.TrueCount)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.Estimate(qs[i%len(qs)].Pattern)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkPathLineage compares the path-selectivity lineage (Markov vs
// path tree vs Bloom histogram vs CST) on paths of length 5 — beyond the
// stored length, where the Markov extension is the differentiator.
func BenchmarkPathLineage(b *testing.B) {
	s := benchSuite(b)
	benchEnv(b, datagen.NASA)
	var rows []experiments.PathLineageRow
	for i := 0; i < b.N; i++ {
		r, err := s.PathLineage()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Dataset == datagen.NASA && r.Length == 5 {
			b.ReportMetric(r.AvgErrPct, r.Estimator+"-err%")
		}
	}
}

// BenchmarkExtendedBaselines runs the full twig-baseline lineage.
func BenchmarkExtendedBaselines(b *testing.B) {
	s := benchSuite(b)
	benchEnv(b, datagen.XMark)
	var rows []experiments.ExtendedRow
	for i := 0; i < b.N; i++ {
		r, err := s.ExtendedBaselines()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Dataset == datagen.XMark && r.Size == 7 {
			b.ReportMetric(r.AvgErrPct, r.Estimator+"-err%")
		}
	}
}
